//! The DMA stage (§3.1).
//!
//! Stateless: enqueues payload transactions to the PCIe block and, once a
//! transfer completes, moves the bytes and releases downstream effects in
//! the mandated order — "this ordering is necessary to prevent the host
//! and the peer from receiving notifications before the data transfer to
//! the host socket receive buffer is complete" (§3.1.3).
//!
//! On the x86/BlueField ports there is no DMA engine: payload is copied
//! through shared memory on the stage's own core (§E).

use std::collections::HashMap;

use flextoe_nfp::{Cost, DmaDir, DmaReq, FpcTimer};
use flextoe_sim::{cast, try_cast, Ctx, Duration, Msg, Node, NodeId};
use flextoe_wire::TcpOptions;

use crate::costs;
use crate::hostmem::NicToApp;
use crate::proto::{Placement, TxSeg};
use crate::segment::SharedConnTable;
use crate::stages::{DmaJob, DmaJobKind, NbiSubmit, NotifyJob, SharedCfg};

/// Continuation token flowing through the DMA engine.
struct DmaToken(u64);

enum Cont {
    Rx {
        conn: u32,
        group: usize,
        frame: Vec<u8>,
        placement: Placement,
        ack: Option<(u64, Vec<u8>)>,
        notifies: Vec<(u16, NicToApp)>,
    },
    Tx {
        conn: u32,
        group: usize,
        nbi_seq: u64,
        spec: flextoe_wire::SegmentSpec,
        seg: TxSeg,
    },
}

pub struct DmaStage {
    cfg: SharedCfg,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    table: SharedConnTable,
    /// In-flight continuations keyed by token.
    pending: HashMap<u64, Cont>,
    next_token: u64,
    /// Routing.
    pub engine: NodeId,
    pub seqr: NodeId,
    pub ctxq: NodeId,
    pub rx_payload_bytes: u64,
    pub tx_payload_bytes: u64,
}

impl DmaStage {
    pub fn new(
        cfg: SharedCfg,
        table: SharedConnTable,
        engine: NodeId,
        seqr: NodeId,
        ctxq: NodeId,
    ) -> DmaStage {
        // "DMA managers are replicated to hide PCIe latencies" (§4.1).
        let fpcs = (0..2)
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        DmaStage {
            cfg,
            fpcs,
            rr: 0,
            table,
            pending: HashMap::new(),
            next_token: 0,
            engine,
            seqr,
            ctxq,
            rx_payload_bytes: 0,
            tx_payload_bytes: 0,
        }
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: Cost) -> Duration {
        let i = self.rr % self.fpcs.len();
        self.rr += 1;
        let done = self.fpcs[i].execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    /// Software-copy latency on ports without a DMA engine (§E).
    fn sw_copy_cost(&self, bytes: usize) -> Cost {
        Cost::new(
            bytes as u64 / self.cfg.platform.copy_bytes_per_cycle.max(1) + 20,
            0,
        )
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, bytes: usize, dir: DmaDir, cont: Cont) {
        let token = self.next_token;
        self.next_token += 1;
        self.pending.insert(token, cont);
        if self.cfg.platform.hw_dma {
            let d = self.exec(ctx, costs::DMA_STAGE);
            ctx.send(
                self.engine,
                d,
                DmaReq {
                    bytes,
                    dir,
                    reply_to: ctx.self_id(),
                    token: Box::new(DmaToken(token)),
                },
            );
        } else {
            // software copy: the stage core does the move itself
            let d = self.exec(ctx, costs::DMA_STAGE + self.sw_copy_cost(bytes));
            ctx.wake(d, DmaToken(token));
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some(cont) = self.pending.remove(&token) else {
            return;
        };
        match cont {
            Cont::Rx {
                conn,
                group,
                frame,
                placement,
                ack,
                notifies,
            } => {
                // payload now in host memory: perform the byte movement
                let table = self.table.borrow();
                if let Some(entry) = table.get(conn) {
                    let src = &frame[placement.frame_off as usize + payload_base(&frame)
                        ..placement.frame_off as usize + payload_base(&frame) + placement.len as usize];
                    entry.rx_buf.borrow_mut().write(placement.buf_pos, src);
                    self.rx_payload_bytes += placement.len as u64;
                }
                drop(table);
                self.release_rx(ctx, group, ack, notifies);
            }
            Cont::Tx {
                conn,
                group,
                nbi_seq,
                mut spec,
                seg,
            } => {
                let now_us = ctx.now().as_us() as u32;
                let table = self.table.borrow();
                let payload = table
                    .get(conn)
                    .map(|e| e.tx_buf.borrow().read_vec(seg.buf_pos, seg.len));
                drop(table);
                let Some(payload) = payload else { return };
                self.tx_payload_bytes += seg.len as u64;
                // finalize the frame: protocol fields + timestamps + payload
                spec.seq = seg.seq;
                spec.ack = seg.ack;
                spec.window = seg.window;
                spec.flags = flextoe_wire::TcpFlags::ACK
                    | flextoe_wire::TcpFlags::PSH
                    | if seg.fin {
                        flextoe_wire::TcpFlags::FIN
                    } else {
                        flextoe_wire::TcpFlags(0)
                    };
                spec.options = TcpOptions {
                    timestamp: Some((now_us, seg.ts_echo)),
                    ..Default::default()
                };
                spec.payload_len = payload.len();
                let d = self.exec(ctx, costs::CHECKSUM);
                let frame = spec.emit(&payload);
                ctx.send(
                    self.seqr,
                    d,
                    NbiSubmit {
                        group,
                        nbi_seq,
                        frame,
                    },
                );
            }
        }
    }

    /// Release an RX item's ACK + notifications (post-payload ordering).
    fn release_rx(
        &mut self,
        ctx: &mut Ctx<'_>,
        group: usize,
        ack: Option<(u64, Vec<u8>)>,
        notifies: Vec<(u16, NicToApp)>,
    ) {
        let d = self.exec(ctx, costs::DMA_STAGE);
        if let Some((nbi_seq, frame)) = ack {
            ctx.send(
                self.seqr,
                d,
                NbiSubmit {
                    group,
                    nbi_seq,
                    frame,
                },
            );
        }
        for (ctx_id, desc) in notifies {
            ctx.send(self.ctxq, d, NotifyJob { ctx: ctx_id, desc });
        }
    }
}

/// Byte offset of the TCP payload in one of our frames.
fn payload_base(frame: &[u8]) -> usize {
    use flextoe_wire::{TcpPacket, ETH_HDR_LEN, IPV4_HDR_LEN};
    let tcp_off = ETH_HDR_LEN + IPV4_HDR_LEN;
    TcpPacket::new_checked(&frame[tcp_off..])
        .map(|t| tcp_off + t.data_offset())
        .unwrap_or(tcp_off + 20)
}

impl Node for DmaStage {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let msg = match try_cast::<DmaToken>(msg) {
            Ok(tok) => {
                self.complete(ctx, tok.0);
                return;
            }
            Err(m) => m,
        };
        let job = cast::<DmaJob>(msg);
        match job.kind {
            DmaJobKind::RxPlace {
                frame,
                placement,
                ack,
                notifies,
            } => match placement {
                Some(placement) => {
                    // One frame's payload: the placement length was trimmed
                    // by the protocol stage to fit the receive window.
                    self.issue(
                        ctx,
                        placement.len as usize,
                        DmaDir::NicToHost,
                        Cont::Rx {
                            conn: job.conn,
                            group: job.group,
                            frame,
                            placement,
                            ack,
                            notifies,
                        },
                    );
                }
                None => self.release_rx(ctx, job.group, ack, notifies),
            },
            DmaJobKind::TxFetch { nbi_seq, spec, seg } => {
                if seg.len == 0 {
                    // bare FIN / window probe: nothing to fetch
                    self.pending.insert(
                        self.next_token,
                        Cont::Tx {
                            conn: job.conn,
                            group: job.group,
                            nbi_seq,
                            spec,
                            seg,
                        },
                    );
                    let tok = DmaToken(self.next_token);
                    self.next_token += 1;
                    let d = self.exec(ctx, costs::DMA_STAGE);
                    ctx.wake(d, tok);
                } else {
                    self.issue(
                        ctx,
                        seg.len as usize,
                        DmaDir::HostToNic,
                        Cont::Tx {
                            conn: job.conn,
                            group: job.group,
                            nbi_seq,
                            spec,
                            seg,
                        },
                    );
                }
            }
            DmaJobKind::AckOnly { nbi_seq, frame } => {
                let d = self.exec(ctx, costs::DMA_STAGE);
                ctx.send(
                    self.seqr,
                    d,
                    NbiSubmit {
                        group: job.group,
                        nbi_seq,
                        frame,
                    },
                );
            }
        }
    }

    fn name(&self) -> String {
        "dma-stage".to_string()
    }
}
