//! The DMA stage (§3.1).
//!
//! Stateless: enqueues payload transactions to the PCIe block and, once a
//! transfer completes, moves the bytes and releases downstream effects in
//! the mandated order — "this ordering is necessary to prevent the host
//! and the peer from receiving notifications before the data transfer to
//! the host socket receive buffer is complete" (§3.1.3).
//!
//! The in-flight work item stays in the NIC work pool while its DMA is
//! outstanding; the pool slot index doubles as the transfer continuation
//! token, so the round trip through the DMA engine is allocation-free.
//!
//! On the x86/BlueField ports there is no DMA engine: payload is copied
//! through shared memory on the stage's own core (§E).

use flextoe_nfp::{dma_req, Cost, DmaDir, FpcTimer};
use flextoe_sim::{Ctx, Duration, Msg, NbiFrame, Node, NodeId, XferDone};
use flextoe_wire::{Frame, TcpOptions};

use crate::costs;
use crate::segment::{
    RxWork, SharedConnTable, SharedSegPool, SharedWorkPool, TxWork, Work, WorkPool,
};
use crate::stages::{NotifyJob, SharedCfg};

pub struct DmaStage {
    cfg: SharedCfg,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    table: SharedConnTable,
    pool: SharedWorkPool,
    seg_pool: SharedSegPool,
    /// Routing.
    pub engine: NodeId,
    pub seqr: NodeId,
    pub ctxq: NodeId,
    pub rx_payload_bytes: u64,
    pub tx_payload_bytes: u64,
}

impl DmaStage {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SharedCfg,
        table: SharedConnTable,
        pool: SharedWorkPool,
        seg_pool: SharedSegPool,
        engine: NodeId,
        seqr: NodeId,
        ctxq: NodeId,
    ) -> DmaStage {
        // "DMA managers are replicated to hide PCIe latencies" (§4.1).
        let fpcs = (0..2)
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        DmaStage {
            cfg,
            fpcs,
            rr: 0,
            table,
            pool,
            seg_pool,
            engine,
            seqr,
            ctxq,
            rx_payload_bytes: 0,
            tx_payload_bytes: 0,
        }
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: Cost) -> Duration {
        let i = self.rr % self.fpcs.len();
        self.rr += 1;
        let done = self.fpcs[i].execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    /// Software-copy latency on ports without a DMA engine (§E).
    fn sw_copy_cost(&self, bytes: usize) -> Cost {
        Cost::new(
            bytes as u64 / self.cfg.platform.copy_bytes_per_cycle.max(1) + 20,
            0,
        )
    }

    /// Issue the payload transaction for the work in `slot` (which stays
    /// in the pool as the in-flight continuation).
    fn issue(&mut self, ctx: &mut Ctx<'_>, slot: u32, bytes: usize, dir: DmaDir) {
        if self.cfg.platform.hw_dma {
            let d = self.exec(ctx, costs::DMA_STAGE);
            ctx.send(
                self.engine,
                d,
                dma_req(bytes, dir, ctx.self_id(), slot as u64),
            );
        } else {
            // software copy: the stage core does the move itself
            let d = self.exec(ctx, costs::DMA_STAGE + self.sw_copy_cost(bytes));
            let to = ctx.self_id();
            ctx.wake(
                d,
                XferDone {
                    token: slot as u64,
                    to,
                },
            );
        }
    }

    /// The RX payload (if any) reached host memory: move the bytes,
    /// recycle the frame buffer and release ACK + notifications.
    fn complete_rx(&mut self, ctx: &mut Ctx<'_>, w: RxWork, group: usize) {
        let RxWork {
            frame,
            conn,
            outcome,
            ack_frame,
            nbi_seq,
            notify_ctx,
            notify_rx,
            notify_tx,
            ..
        } = w;
        if let Some(placement) = outcome.and_then(|o| o.placement) {
            let table = self.table.borrow();
            if let Some(entry) = table.get(conn) {
                let base = placement.frame_off as usize + payload_base(&frame);
                let src = &frame[base..base + placement.len as usize];
                entry.rx_buf.borrow_mut().write(placement.buf_pos, src);
                self.rx_payload_bytes += placement.len as u64;
            }
        }
        self.seg_pool.borrow_mut().put(frame);

        let d = self.exec(ctx, costs::DMA_STAGE);
        if let Some(nbi_seq) = nbi_seq {
            // ack_frame None = the connection vanished before post could
            // build the ACK; an empty frame still releases the allocated
            // NBI slot (seqr skips it) so the egress lane never stalls
            ctx.send(
                self.seqr,
                d,
                NbiFrame {
                    group: group as u32,
                    nbi_seq,
                    frame: ack_frame.unwrap_or_default(),
                },
            );
        }
        for desc in [notify_rx, notify_tx].into_iter().flatten() {
            ctx.send(
                self.ctxq,
                d,
                NotifyJob {
                    ctx: notify_ctx,
                    desc,
                },
            );
        }
    }

    /// The TX payload arrived in NIC memory: finalize and emit the frame.
    fn complete_tx(&mut self, ctx: &mut Ctx<'_>, w: TxWork) {
        let seg = w.seg.expect("dma stage after protocol");
        let nbi_seq = w.nbi_seq.expect("proto assigned nbi for tx");
        let mut spec = w.spec.expect("dma stage after pre");
        let now_us = ctx.now().as_us() as u32;
        let table = self.table.borrow();
        let Some(entry) = table.get(w.conn) else {
            // connection torn down mid-flight: the protocol stage already
            // allocated this frame's NBI slot, so release it with an empty
            // skip frame or the flow group's egress reorderer stalls
            drop(table);
            let d = self.exec(ctx, costs::DMA_STAGE);
            ctx.send(
                self.seqr,
                d,
                NbiFrame {
                    group: w.group as u32,
                    nbi_seq,
                    frame: Frame::raw(Vec::new()),
                },
            );
            return;
        };
        self.tx_payload_bytes += seg.len as u64;
        // finalize the frame: protocol fields + timestamps + payload
        spec.seq = seg.seq;
        spec.ack = seg.ack;
        spec.window = seg.window;
        spec.flags = flextoe_wire::TcpFlags::ACK
            | flextoe_wire::TcpFlags::PSH
            | if seg.fin {
                flextoe_wire::TcpFlags::FIN
            } else {
                flextoe_wire::TcpFlags(0)
            };
        spec.options = TcpOptions {
            timestamp: Some((now_us, seg.ts_echo)),
            ..Default::default()
        };
        spec.payload_len = seg.len as usize;
        let buf = self.seg_pool.borrow_mut().take();
        let tx_buf = entry.tx_buf.borrow();
        // parse-once: the emitted frame carries its metadata so no fabric
        // hop (switch routing, ECN marking, WRED) re-reads the headers
        let frame = spec.emit_frame_into(buf, |payload| tx_buf.read(seg.buf_pos, payload));
        drop(tx_buf);
        drop(table);
        let d = self.exec(ctx, costs::CHECKSUM);
        ctx.send(
            self.seqr,
            d,
            NbiFrame {
                group: w.group as u32,
                nbi_seq,
                frame,
            },
        );
    }
}

/// Byte offset of the TCP payload in one of our frames.
fn payload_base(frame: &[u8]) -> usize {
    use flextoe_wire::{TcpPacket, ETH_HDR_LEN, IPV4_HDR_LEN};
    let tcp_off = ETH_HDR_LEN + IPV4_HDR_LEN;
    TcpPacket::new_checked(&frame[tcp_off..])
        .map(|t| tcp_off + t.data_offset())
        .unwrap_or(tcp_off + 20)
}

impl DmaStage {
    /// One delivery against an already-borrowed work pool
    /// ([`Node::on_batch`] borrows it once per burst).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, pool: &mut WorkPool) {
        match msg {
            // a work item arriving from post-processing
            Msg::Work(token) => {
                let slot = token.slot;
                enum Plan {
                    Issue(usize, DmaDir),
                    /// Bare FIN / window probe: nothing to fetch, but the
                    /// emit still waits one stage cycle for symmetry.
                    TxZeroLen,
                    /// No payload movement: finish immediately.
                    Finish,
                }
                let plan = match pool.get(slot) {
                    Work::Rx(w) => match w.outcome.as_ref().and_then(|o| o.placement) {
                        // the placement length was trimmed by the protocol
                        // stage to fit the receive window
                        Some(p) => Plan::Issue(p.len as usize, DmaDir::NicToHost),
                        None => Plan::Finish,
                    },
                    Work::Tx(w) => {
                        let len = w.seg.as_ref().expect("dma stage after protocol").len;
                        if len == 0 {
                            Plan::TxZeroLen
                        } else {
                            Plan::Issue(len as usize, DmaDir::HostToNic)
                        }
                    }
                    // window-update ACK: no payload movement at all
                    Work::Hc(_) => Plan::Finish,
                };
                match plan {
                    Plan::Issue(bytes, dir) => self.issue(ctx, slot, bytes, dir),
                    Plan::TxZeroLen => {
                        let d = self.exec(ctx, costs::DMA_STAGE);
                        let to = ctx.self_id();
                        ctx.wake(
                            d,
                            XferDone {
                                token: slot as u64,
                                to,
                            },
                        );
                    }
                    Plan::Finish => {
                        let work = pool.retire(slot);
                        match work {
                            Work::Rx(w) => {
                                let group = w.group;
                                self.complete_rx(ctx, w, group);
                            }
                            Work::Hc(w) => {
                                // ack_frame None = the connection vanished
                                // before post could build the window-update
                                // ACK; an empty frame still releases the
                                // allocated NBI slot (seqr skips it)
                                let d = self.exec(ctx, costs::DMA_STAGE);
                                ctx.send(
                                    self.seqr,
                                    d,
                                    NbiFrame {
                                        group: w.group as u32,
                                        nbi_seq: w.nbi_seq.expect("proto assigned nbi"),
                                        frame: w.ack_frame.unwrap_or_default(),
                                    },
                                );
                            }
                            Work::Tx(_) => unreachable!("handled by TxZeroLen/Issue"),
                        }
                    }
                }
            }
            // a payload transaction completed
            Msg::XferDone(done) => {
                let slot = done.token as u32;
                let work = pool.retire(slot);
                match work {
                    Work::Rx(w) => {
                        let group = w.group;
                        self.complete_rx(ctx, w, group);
                    }
                    Work::Tx(w) => self.complete_tx(ctx, w),
                    Work::Hc(_) => unreachable!("HC items never enter the DMA engine"),
                }
            }
            m => panic!("dma-stage: unexpected message {}", m.variant_name()),
        }
    }
}

impl Node for DmaStage {
    crate::stages::pool_batched_delivery!();

    fn name(&self) -> String {
        "dma-stage".to_string()
    }
}
