//! The sequencing / reordering node (§3.2).
//!
//! Three functions on one node (a further island in the real layout):
//!
//! 1. **Entry sequencing**: every work item entering the pipeline — RX
//!    frames from the NBI, TX triggers from the flow scheduler, HC
//!    descriptors from the context-queue stage — receives a pipeline
//!    sequence number.
//! 2. **Protocol admission**: after the (replicated, parallel)
//!    pre-processing stage, items are restored to entry order before
//!    being steered to their flow-group's protocol stage.
//! 3. **NBI admission**: finished frames are restored to protocol-stage
//!    emission order (per flow-group) before transmission.

use flextoe_sim::{cast, try_cast, Ctx, Msg, Node, NodeId};
use flextoe_wire::Frame;

use crate::costs;
use crate::reorder::Reorder;
use crate::segment::{PipelineMsg, RxWork, Work};
use crate::stages::{NbiSubmit, ProtoSkip, SharedCfg};
use flextoe_nfp::{FpcTimer, MacTx};

pub struct SeqrNode {
    cfg: SharedCfg,
    fpc: FpcTimer,
    next_entry: u64,
    /// Protocol-admission reorderers, one per flow group… but entry
    /// sequencing is global, so admission ordering is global too: a single
    /// reorderer releases to the right group's protocol stage.
    admit: Reorder<PipelineMsg>,
    /// NBI-admission reorderers, one lane per flow group.
    nbi: Vec<Reorder<Vec<u8>>>,
    /// Routing.
    pub pre_pool: Vec<NodeId>,
    pre_rr: usize,
    pub protos: Vec<NodeId>,
    pub mac: NodeId,
    pub rx_frames: u64,
    pub tx_triggers: u64,
}

impl SeqrNode {
    pub fn new(cfg: SharedCfg, _mac: NodeId) -> SeqrNode {
        let n_groups = cfg.n_groups;
        SeqrNode {
            fpc: FpcTimer::new(cfg.platform.clock, cfg.platform.threads_per_fpc),
            cfg,
            next_entry: 0,
            admit: Reorder::new(),
            nbi: (0..n_groups).map(|_| Reorder::new()).collect(),
            pre_pool: Vec::new(),
            pre_rr: 0,
            protos: Vec::new(),
            mac: 0,
            rx_frames: 0,
            tx_triggers: 0,
        }
    }

    fn enter(&mut self, ctx: &mut Ctx<'_>, work: Work) {
        let entry_seq = self.next_entry;
        self.next_entry += 1;
        let done = self.fpc.execute(ctx.now(), costs::SEQR + self.cfg.trace_cost());
        let delay = done.saturating_since(ctx.now()) + self.cfg.hop_intra();
        // round-robin across the pre-processor pool ("pre-processors
        // handle segments for any flow", §4.1)
        let to = self.pre_pool[self.pre_rr % self.pre_pool.len()];
        self.pre_rr += 1;
        ctx.send(to, delay, PipelineMsg { entry_seq, work });
    }

    fn admit_proto(&mut self, ctx: &mut Ctx<'_>, released: Vec<PipelineMsg>) {
        for msg in released {
            let group = msg.work.group();
            let done = self.fpc.execute(ctx.now(), costs::SEQR);
            let delay = done.saturating_since(ctx.now()) + self.cfg.hop_cross();
            ctx.send(self.protos[group], delay, msg);
        }
    }

    fn admit_nbi(&mut self, ctx: &mut Ctx<'_>, frames: Vec<Vec<u8>>) {
        for frame in frames {
            let done = self.fpc.execute(ctx.now(), costs::SEQR);
            let delay = done.saturating_since(ctx.now()) + self.cfg.hop_cross();
            ctx.send(self.mac, delay, MacTx(Frame(frame)));
        }
    }
}

impl Node for SeqrNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // raw ingress frame from the MAC
        let msg = match try_cast::<Frame>(msg) {
            Ok(frame) => {
                self.rx_frames += 1;
                let work = Work::Rx(RxWork {
                    frame: frame.0,
                    view: None,
                    summary: Default::default(),
                    conn: 0,
                    group: 0,
                    outcome: None,
                    ack_frame: None,
                    nbi_seq: None,
                    arrival: ctx.now(),
                });
                self.enter(ctx, work);
                return;
            }
            Err(m) => m,
        };
        // work entering from scheduler (TX) or context-queue stage (HC)
        let msg = match try_cast::<Work>(msg) {
            Ok(work) => {
                if matches!(*work, Work::Tx(_)) {
                    self.tx_triggers += 1;
                }
                self.enter(ctx, *work);
                return;
            }
            Err(m) => m,
        };
        // pre-processing finished: admit to protocol in entry order
        let msg = match try_cast::<PipelineMsg>(msg) {
            Ok(pm) => {
                if self.cfg.reorder {
                    let released = self.admit.push(pm.entry_seq, *pm);
                    self.admit_proto(ctx, released);
                } else {
                    self.admit_proto(ctx, vec![*pm]);
                }
                return;
            }
            Err(m) => m,
        };
        // pre-processing dropped/redirected an item
        let msg = match try_cast::<ProtoSkip>(msg) {
            Ok(skip) => {
                if self.cfg.reorder {
                    let released = self.admit.skip(skip.0);
                    self.admit_proto(ctx, released);
                }
                return;
            }
            Err(m) => m,
        };
        // finished frame for transmission
        let sub = cast::<NbiSubmit>(msg);
        if self.cfg.reorder {
            let released = self.nbi[sub.group].push(sub.nbi_seq, sub.frame);
            self.admit_nbi(ctx, released);
        } else {
            self.admit_nbi(ctx, vec![sub.frame]);
        }
    }

    fn name(&self) -> String {
        "seqr".to_string()
    }
}
