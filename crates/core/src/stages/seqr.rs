//! The sequencing / reordering node (§3.2).
//!
//! Three functions on one node (a further island in the real layout):
//!
//! 1. **Entry sequencing**: every work item entering the pipeline — RX
//!    frames from the NBI, TX triggers from the flow scheduler, HC
//!    descriptors from the context-queue stage — receives a pipeline
//!    sequence number.
//! 2. **Protocol admission**: after the (replicated, parallel)
//!    pre-processing stage, items are restored to entry order before
//!    being steered to their flow-group's protocol stage.
//! 3. **NBI admission**: finished frames are restored to protocol-stage
//!    emission order (per flow-group) before transmission.
//!
//! Work items live in the NIC's shared `WorkPool`; only `WorkToken`
//! slot indices travel through the event queue.

use flextoe_sim::{CounterHandle, Ctx, MacTx, Msg, Node, NodeId, Stats, WorkToken};
use flextoe_wire::Frame;

use crate::costs;
use crate::reorder::Reorder;
use crate::segment::{RxWork, SharedSegPool, SharedWorkPool, Work, WorkPool};
use crate::stages::SharedCfg;
use flextoe_nfp::FpcTimer;

pub struct SeqrNode {
    cfg: SharedCfg,
    fpc: FpcTimer,
    next_entry: u64,
    pool: SharedWorkPool,
    /// Protocol-admission reorderers, one per flow group… but entry
    /// sequencing is global, so admission ordering is global too: a single
    /// reorderer releases to the right group's protocol stage.
    admit: Reorder<u32>,
    /// NBI-admission reorderers, one lane per flow group.
    nbi: Vec<Reorder<Frame>>,
    /// Reused release buffers: the reorderers' in-order fast path appends
    /// here instead of allocating a fresh `Vec` per delivery.
    scratch_slots: Vec<u32>,
    scratch_frames: Vec<Frame>,
    /// Routing.
    pub pre_pool: Vec<NodeId>,
    pre_rr: usize,
    pub protos: Vec<NodeId>,
    pub mac: NodeId,
    pub rx_frames: u64,
    pub tx_triggers: u64,
    /// The NIC's packet-buffer pool, consulted (with the work pool) at RX
    /// admission when either carries a capacity bound. `None` = the node
    /// is driven standalone in a test without a NIC (no segment-pool
    /// pressure to model).
    pub seg_pool: Option<SharedSegPool>,
    /// RX frames shed at ingress because a capped pool had no headroom —
    /// backpressure as a counted degraded mode instead of unbounded slab
    /// growth (or a panic).
    pub pool_exhausted: u64,
    exhausted_counter: Option<CounterHandle>,
}

impl SeqrNode {
    pub fn new(cfg: SharedCfg, pool: SharedWorkPool, _mac: NodeId) -> SeqrNode {
        let n_groups = cfg.n_groups;
        SeqrNode {
            fpc: FpcTimer::new(cfg.platform.clock, cfg.platform.threads_per_fpc),
            cfg,
            next_entry: 0,
            pool,
            admit: Reorder::new(),
            nbi: (0..n_groups).map(|_| Reorder::new()).collect(),
            scratch_slots: Vec::new(),
            scratch_frames: Vec::new(),
            pre_pool: Vec::new(),
            pre_rr: 0,
            protos: Vec::new(),
            mac: 0,
            rx_frames: 0,
            tx_triggers: 0,
            seg_pool: None,
            pool_exhausted: 0,
            exhausted_counter: None,
        }
    }

    fn enter(&mut self, ctx: &mut Ctx<'_>, slot: u32) {
        let entry_seq = self.next_entry;
        self.next_entry += 1;
        let done = self
            .fpc
            .execute(ctx.now(), costs::SEQR + self.cfg.trace_cost());
        let delay = done.saturating_since(ctx.now()) + self.cfg.hop_intra();
        // round-robin across the pre-processor pool ("pre-processors
        // handle segments for any flow", §4.1)
        let to = self.pre_pool[self.pre_rr % self.pre_pool.len()];
        self.pre_rr += 1;
        ctx.send(
            to,
            delay,
            WorkToken {
                slot,
                entry_seq: Some(entry_seq),
            },
        );
    }

    fn admit_proto(&mut self, ctx: &mut Ctx<'_>, released: &mut Vec<u32>, pool: &WorkPool) {
        for slot in released.drain(..) {
            let group = pool.get(slot).group();
            let done = self.fpc.execute(ctx.now(), costs::SEQR);
            let delay = done.saturating_since(ctx.now()) + self.cfg.hop_cross();
            ctx.send(
                self.protos[group],
                delay,
                WorkToken {
                    slot,
                    entry_seq: None,
                },
            );
        }
    }

    fn admit_nbi(&mut self, ctx: &mut Ctx<'_>, frames: &mut Vec<Frame>) {
        for frame in frames.drain(..) {
            // an empty frame is an NBI skip: the item died after its slot
            // was allocated (connection teardown mid-pipeline); the slot
            // advanced the reorderer and there is nothing to transmit
            if frame.is_empty() {
                continue;
            }
            let done = self.fpc.execute(ctx.now(), costs::SEQR);
            let delay = done.saturating_since(ctx.now()) + self.cfg.hop_cross();
            ctx.send(self.mac, delay, MacTx(frame));
        }
    }
}

impl SeqrNode {
    /// One delivery against an already-borrowed work pool ([`Node::on_batch`]
    /// borrows it once per burst).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, pool: &mut WorkPool) {
        match msg {
            // raw ingress frame from the MAC
            Msg::Frame(frame) => {
                self.rx_frames += 1;
                // pool-exhaustion backpressure: a capped work pool or
                // packet-buffer pool with no headroom sheds the frame at
                // ingress (the NBI's behavior when packet memory is gone)
                // — a counted drop, recycled to the fabric pool so the
                // conservation invariant holds through exhaustion
                let seg_full = self
                    .seg_pool
                    .as_ref()
                    .is_some_and(|p| p.borrow().at_capacity());
                if pool.at_capacity() || seg_full {
                    self.pool_exhausted += 1;
                    if let Some(c) = self.exhausted_counter {
                        ctx.stats.inc(c);
                    }
                    ctx.pool.put(frame.into_bytes());
                    return;
                }
                let slot = pool.alloc(Work::Rx(RxWork {
                    meta: frame.meta,
                    frame: frame.bytes,
                    view: None,
                    summary: Default::default(),
                    conn: 0,
                    group: 0,
                    outcome: None,
                    ack_frame: None,
                    nbi_seq: None,
                    notify_ctx: 0,
                    notify_rx: None,
                    notify_tx: None,
                    arrival: ctx.now(),
                }));
                self.enter(ctx, slot);
            }
            Msg::Work(token) => match token.entry_seq {
                // work entering from scheduler (TX) or context-queue
                // stage (HC): no entry sequence yet
                None => {
                    if matches!(pool.get(token.slot), Work::Tx(_)) {
                        self.tx_triggers += 1;
                    }
                    self.enter(ctx, token.slot);
                }
                // pre-processing finished: admit to protocol in entry order
                Some(entry_seq) => {
                    let mut released = std::mem::take(&mut self.scratch_slots);
                    if self.cfg.reorder {
                        self.admit.push_into(entry_seq, token.slot, &mut released);
                    } else {
                        released.push(token.slot);
                    }
                    self.admit_proto(ctx, &mut released, pool);
                    self.scratch_slots = released;
                }
            },
            // pre-processing dropped/redirected an item
            Msg::Skip(entry_seq) => {
                if self.cfg.reorder {
                    let mut released = std::mem::take(&mut self.scratch_slots);
                    self.admit.skip_into(entry_seq, &mut released);
                    self.admit_proto(ctx, &mut released, pool);
                    self.scratch_slots = released;
                }
            }
            // finished frame for transmission
            Msg::Nbi(sub) => {
                let mut frames = std::mem::take(&mut self.scratch_frames);
                if self.cfg.reorder {
                    self.nbi[sub.group as usize].push_into(sub.nbi_seq, sub.frame, &mut frames);
                } else {
                    frames.push(sub.frame);
                }
                self.admit_nbi(ctx, &mut frames);
                self.scratch_frames = frames;
            }
            m => panic!("seqr: unexpected message {}", m.variant_name()),
        }
    }
}

impl Node for SeqrNode {
    crate::stages::pool_batched_delivery!();

    fn on_attach(&mut self, stats: &mut Stats) {
        self.exhausted_counter = Some(stats.counter("nic.pool_exhausted"));
    }

    fn name(&self) -> String {
        "seqr".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::shared_work_pool;
    use crate::stages::PipeCfg;
    use flextoe_sim::{NbiFrame, Sim, Time};
    use std::rc::Rc;

    struct MacProbe {
        frames: Vec<Vec<u8>>,
    }
    impl Node for MacProbe {
        fn on_msg(&mut self, _ctx: &mut Ctx<'_>, msg: Msg) {
            let Msg::MacTx(tx) = msg else {
                panic!("probe expects egress frames")
            };
            self.frames.push(tx.0.into_bytes());
        }
    }

    /// A work item that dies after its NBI slot was allocated (connection
    /// teardown mid-pipeline) releases the slot with an empty skip frame:
    /// later frames of the lane still transmit, and the skip itself never
    /// reaches the MAC.
    #[test]
    fn empty_nbi_frame_skips_without_stalling_the_lane() {
        let mut sim = Sim::new(1);
        let mac = sim.add_node(MacProbe { frames: vec![] });
        let cfg = Rc::new(PipeCfg::agilio_full());
        let mut seqr = SeqrNode::new(cfg, shared_work_pool(), mac);
        seqr.mac = mac;
        let seqr = sim.add_node(seqr);

        // nbi_seq 1 arrives first and must wait for nbi_seq 0
        sim.schedule(
            Time::from_ns(10),
            seqr,
            NbiFrame {
                group: 0,
                nbi_seq: 1,
                frame: Frame::raw(vec![0xAB; 64]),
            },
        );
        sim.run();
        assert!(
            sim.node_ref::<MacProbe>(mac).frames.is_empty(),
            "held for reordering"
        );

        // nbi_seq 0 died mid-pipeline: its empty skip frame releases the lane
        sim.schedule(
            Time::from_ns(20),
            seqr,
            NbiFrame {
                group: 0,
                nbi_seq: 0,
                frame: Frame::raw(Vec::new()),
            },
        );
        sim.run();
        let frames = &sim.node_ref::<MacProbe>(mac).frames;
        assert_eq!(
            frames.len(),
            1,
            "skip released the buffered frame, emitted nothing itself"
        );
        assert_eq!(frames[0], vec![0xAB; 64]);
    }
}
