//! The post-processing stage (§3.1.3).
//!
//! RX: **Ack** — prepare the acknowledgment segment; **ECN/Stamp** — ECN
//! feedback and timestamps for RTT estimation; **Stats** — congestion
//! statistics for the control plane and flow-scheduler updates; **Pos** —
//! host buffer placement for the DMA stage; allocate the context-queue
//! notification.
//!
//! Post-processor state is "read-only after connection establishment,
//! enabl\[ing\] coordination-free scaling" — the stage is replicated
//! per flow group.

use flextoe_ccp::{AckEvent, SharedCcp};
use flextoe_nfp::{Cost, FpcTimer};
use flextoe_sim::{CounterHandle, Ctx, FreeDesc, FsUpdate, Msg, Node, NodeId, Stats, WorkToken};
use flextoe_wire::{Ecn, SegmentSpec, TcpFlags, TcpOptions};

use crate::costs;
use crate::hostmem::NicToApp;
use crate::proto::TxSeg;
use crate::segment::{SharedConnTable, SharedSegPool, SharedWorkPool, Work, WorkPool};
use crate::stages::SharedCfg;

pub struct PostStage {
    cfg: SharedCfg,
    pub group: usize,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    table: SharedConnTable,
    pool: SharedWorkPool,
    seg_pool: SharedSegPool,
    /// Congestion-measurement layer (fold state + report batching, §D).
    ccp: SharedCcp,
    /// Routing.
    pub dma: NodeId,
    pub sched: NodeId,
    pub ctxq: NodeId,
    /// Control-plane node sealed report batches are sent to.
    pub ctrl: NodeId,
    pub acks_prepared: u64,
    pub notifications: u64,
    ccp_events: Option<CounterHandle>,
}

impl PostStage {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SharedCfg,
        group: usize,
        table: SharedConnTable,
        pool: SharedWorkPool,
        seg_pool: SharedSegPool,
        ccp: SharedCcp,
        dma: NodeId,
        sched: NodeId,
        ctxq: NodeId,
        ctrl: NodeId,
    ) -> PostStage {
        let fpcs = (0..cfg.post_replicas.max(1))
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        PostStage {
            cfg,
            group,
            fpcs,
            rr: 0,
            table,
            pool,
            seg_pool,
            ccp,
            dma,
            sched,
            ctxq,
            ctrl,
            acks_prepared: 0,
            notifications: 0,
            ccp_events: None,
        }
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: flextoe_nfp::Cost) -> flextoe_sim::Duration {
        let i = self.rr % self.fpcs.len();
        self.rr += 1;
        let done = self.fpcs[i].execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    /// Build an ACK frame by reversing the identity of a received segment
    /// and stamping ECN/timestamp feedback (Ack + ECN + Stamp).
    fn build_ack(
        &self,
        now_us: u32,
        view: &flextoe_wire::SegmentView,
        out: &crate::proto::RxOutcome,
        tsval_peer: u32,
        fin_ack: bool,
    ) -> flextoe_wire::Frame {
        let buf = self.seg_pool.borrow_mut().take();
        let mut flags = TcpFlags::ACK;
        if out.ecn_echo {
            flags = flags | TcpFlags::ECE;
        }
        let _ = fin_ack; // the ack number already covers the FIN
        let spec = SegmentSpec {
            src_mac: view.dst_mac,
            dst_mac: view.src_mac,
            src_ip: view.dst_ip,
            dst_ip: view.src_ip,
            src_port: view.dst_port,
            dst_port: view.src_port,
            seq: out.ack_seq,
            ack: out.ack_no,
            flags,
            window: out.ack_window,
            ecn: Ecn::NotEct,
            options: TcpOptions {
                timestamp: Some((now_us, tsval_peer)),
                ..Default::default()
            },
            payload_len: 0,
        };
        spec.emit_frame_into(buf, |_| {})
    }
}

impl PostStage {
    /// One delivery against an already-borrowed work pool
    /// ([`Node::on_batch`] borrows it once per burst).
    fn deliver(&mut self, ctx: &mut Ctx<'_>, msg: Msg, pool: &mut WorkPool) {
        let Msg::Work(token) = msg else {
            panic!("post-stage: unexpected message {}", msg.variant_name())
        };
        let slot = token.slot;
        // In-place processing: the item stays resident in the pool slab —
        // only the cold death paths move the 300-byte Work out.
        match pool.get_mut(slot) {
            Work::Rx(_) => self.rx(ctx, pool, slot),
            Work::Tx(_) => self.tx(ctx, pool, slot),
            Work::Hc(_) => self.hc(ctx, pool, slot),
        }
    }

    fn rx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        let now_us = ctx.now().as_us() as u32;
        let w = pool.rx_mut(slot);
        let out = *w.outcome.as_ref().expect("post stage after protocol");
        let mut cost = costs::POST_RX;

        // ---- Stats: congestion counters + RTT estimate ----------
        let conn = w.conn;
        let mut table = self.table.borrow_mut();
        let Some(entry) = table.get_mut(conn) else {
            drop(table);
            let w = pool.rx_mut(slot);
            if w.nbi_seq.is_some() {
                // the connection vanished between the protocol stage
                // (which allocated an NBI slot for the ACK) and here:
                // forward the item to the DMA stage anyway so the slot
                // is released as an NBI skip — retiring it would stall
                // the flow group's egress reorderer forever
                if let Some(out) = w.outcome.as_mut() {
                    out.placement = None; // no payload movement for a dead conn
                }
                let d = self.exec(ctx, costs::POST_RX);
                ctx.send(
                    self.dma,
                    d + self.cfg.hop_cross(),
                    WorkToken {
                        slot,
                        entry_seq: None,
                    },
                );
            } else if let Work::Rx(w) = pool.retire(slot) {
                self.seg_pool.borrow_mut().put(w.frame);
            }
            return;
        };
        let post = &mut entry.post;
        // free-running counters (the fold layer below snapshots
        // and resets its own window; these mirror the Table 5
        // fields and wrap like hardware counters)
        post.cnt_ackb = post.cnt_ackb.wrapping_add(out.acked_bytes);
        // the DCTCP numerator is *bytes acknowledged under an
        // ECE echo* — the receiver's Ack step reflected CE as
        // ECE (§3.1.3) and this ACK carried it back. CE-marked
        // payload received here is deliberately NOT counted: it
        // concerns the opposite direction's path and reaches
        // that sender through the ACK we generate.
        let ecn_bytes = if w.summary.flags.ece() {
            out.acked_bytes
        } else {
            0
        };
        post.cnt_ecnb = post.cnt_ecnb.wrapping_add(ecn_bytes);
        if out.fast_retransmit {
            post.cnt_fretx = post.cnt_fretx.wrapping_add(1);
        }
        if let Some(tsecr) = out.rtt_sample_ts {
            // our ACK stamps carry microseconds; RTT = now - echo
            let rtt = now_us.wrapping_sub(tsecr);
            if rtt < 1_000_000 {
                // EWMA 7/8, as TAS
                post.rtt_est = if post.rtt_est == 0 {
                    rtt
                } else {
                    (post.rtt_est * 7 + rtt) / 8
                };
            }
        }
        let ctx_id = post.context;
        let rtt_est = post.rtt_est;
        drop(table);

        // ---- Fold: congestion measurement (flextoe-ccp, §D) ------
        // Aggregates this event into the flow's fold state; when
        // the flow's report interval elapses (or a fast retransmit
        // makes it urgent) the sealed batch travels out-of-band to
        // the control plane as one pooled message.
        let folded = self.ccp.borrow_mut().on_ack(
            conn,
            &AckEvent {
                acked_bytes: out.acked_bytes,
                ecn_bytes,
                rtt_us: rtt_est,
                fast_retx: out.fast_retransmit,
                now_us,
            },
        );
        if folded.folded {
            ctx.stats.inc(self.ccp_events.expect("post stage attached"));
            cost += if folded.vm_insns > 0 {
                Cost::new(
                    costs::ext::EBPF_PER_INSN.compute * folded.vm_insns,
                    costs::FOLD_NATIVE.mem,
                )
            } else {
                costs::FOLD_NATIVE
            };
        }
        // batch/report counters are bumped where batches are
        // consumed (ControlPlane::on_report_batch) so the
        // control-plane flush paths are counted too
        if let Some(token) = folded.sealed {
            ctx.send(self.ctrl, self.cfg.platform.pcie.write_latency, token);
        }

        // ---- FS update -------------------------------------------
        if out.update_scheduler {
            ctx.send(
                self.sched,
                self.cfg.hop_cross(),
                FsUpdate {
                    conn,
                    sendable: out.sendable,
                },
            );
        }

        // ---- Ack + ECN + Stamp -----------------------------------
        if out.send_ack {
            self.acks_prepared += 1;
            cost += costs::CHECKSUM;
            let w = pool.rx_mut(slot);
            let frame = {
                let view = w.view.as_ref().expect("post stage after pre");
                self.build_ack(now_us, view, &out, w.summary.tsval, out.fin_delivered)
            };
            w.ack_frame = Some(frame);
        }

        // ---- Notifications ---------------------------------------
        let w = pool.rx_mut(slot);
        w.notify_ctx = ctx_id;
        if out.delivered > 0 || out.fin_delivered {
            w.notify_rx = Some(NicToApp::RxAvail {
                conn,
                len: out.delivered,
                fin: out.fin_delivered,
            });
            self.notifications += 1;
        }
        if out.acked_bytes > 0 {
            w.notify_tx = Some(NicToApp::TxFreed {
                conn,
                len: out.acked_bytes,
            });
            self.notifications += 1;
        }

        // ---- Pos: hand off to the DMA stage -----------------------
        let d = self.exec(ctx, cost);
        ctx.send(
            self.dma,
            d + self.cfg.hop_cross(),
            WorkToken {
                slot,
                entry_seq: None,
            },
        );
    }

    fn tx(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        let w = pool.tx_mut(slot);
        debug_assert!(w.seg.is_some(), "post stage after protocol");
        debug_assert!(w.spec.is_some(), "post stage after pre");
        if let Some(sendable) = w.sendable_after {
            let conn = w.conn;
            ctx.send(
                self.sched,
                self.cfg.hop_cross(),
                FsUpdate { conn, sendable },
            );
        }
        let d = self.exec(ctx, costs::POST_TX);
        ctx.send(
            self.dma,
            d + self.cfg.hop_cross(),
            WorkToken {
                slot,
                entry_seq: None,
            },
        );
    }

    fn hc(&mut self, ctx: &mut Ctx<'_>, pool: &mut WorkPool, slot: u32) {
        let now_us = ctx.now().as_us() as u32;
        let w = pool.hc_mut(slot);
        // FS + Free (Figure 4)
        if let Some(sendable) = w.sendable_after {
            let conn = w.conn;
            ctx.send(
                self.sched,
                self.cfg.hop_cross(),
                FsUpdate { conn, sendable },
            );
        }
        let mut cost = costs::POST_HC;
        let w = pool.hc_mut(slot);
        // Window-update ACK (receive window re-opened).
        if let (Some(seg), Some(_)) = (w.win_ack.as_ref(), w.nbi_seq) {
            cost += costs::CHECKSUM;
            let conn = w.conn;
            let seg = *seg;
            let table = self.table.borrow();
            if let Some(entry) = table.get(conn) {
                let buf = self.seg_pool.borrow_mut().take();
                let frame = ack_from_identity(&table.nic, &entry.pre, &seg, now_us, buf);
                drop(table);
                pool.hc_mut(slot).ack_frame = Some(frame);
                let d = self.exec(ctx, cost);
                ctx.send(
                    self.dma,
                    d + self.cfg.hop_cross(),
                    WorkToken {
                        slot,
                        entry_seq: None,
                    },
                );
                ctx.send(self.ctxq, self.cfg.hop_cross(), FreeDesc);
                return;
            }
        }
        let d = self.exec(ctx, cost);
        if pool.hc_mut(slot).nbi_seq.is_some() {
            // the connection vanished between the protocol stage
            // (which allocated an NBI slot for the window-update
            // ACK) and here: forward the item to the DMA stage
            // anyway so the slot is released as an NBI skip
            ctx.send(
                self.dma,
                d + self.cfg.hop_cross(),
                WorkToken {
                    slot,
                    entry_seq: None,
                },
            );
        } else {
            pool.retire(slot);
        }
        // return the HC descriptor to the pool (Free)
        ctx.send(self.ctxq, d + self.cfg.hop_cross(), FreeDesc);
    }
}

impl Node for PostStage {
    crate::stages::pool_batched_delivery!();

    fn on_attach(&mut self, stats: &mut Stats) {
        self.ccp_events = Some(stats.counter("ccp.events"));
    }

    fn name(&self) -> String {
        format!("post-stage[{}]", self.group)
    }
}

/// Build a bare ACK from connection identity (window updates).
fn ack_from_identity(
    nic: &crate::segment::NicConfig,
    pre: &crate::state::PreState,
    seg: &TxSeg,
    now_us: u32,
    buf: Vec<u8>,
) -> flextoe_wire::Frame {
    SegmentSpec {
        src_mac: nic.mac,
        dst_mac: pre.peer_mac,
        src_ip: nic.ip,
        dst_ip: pre.peer_ip,
        src_port: pre.local_port,
        dst_port: pre.remote_port,
        seq: seg.seq,
        ack: seg.ack,
        flags: TcpFlags::ACK,
        window: seg.window,
        ecn: Ecn::NotEct,
        options: TcpOptions {
            timestamp: Some((now_us, seg.ts_echo)),
            ..Default::default()
        },
        payload_len: 0,
    }
    .emit_frame_into(buf, |_| {})
}
