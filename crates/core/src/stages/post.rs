//! The post-processing stage (§3.1.3).
//!
//! RX: **Ack** — prepare the acknowledgment segment; **ECN/Stamp** — ECN
//! feedback and timestamps for RTT estimation; **Stats** — congestion
//! statistics for the control plane and flow-scheduler updates; **Pos** —
//! host buffer placement for the DMA stage; allocate the context-queue
//! notification.
//!
//! Post-processor state is "read-only after connection establishment,
//! enabl[ing] coordination-free scaling" — the stage is replicated
//! per flow group.

use flextoe_nfp::FpcTimer;
use flextoe_sim::{cast, Ctx, Msg, Node, NodeId};
use flextoe_wire::{Ecn, SegmentSpec, TcpFlags, TcpOptions};

use crate::costs;
use crate::hostmem::NicToApp;
use crate::proto::TxSeg;
use crate::segment::{PipelineMsg, SharedConnTable, Work};
use crate::stages::{DmaJob, DmaJobKind, FreeDesc, FsUpdate, SharedCfg};

pub struct PostStage {
    cfg: SharedCfg,
    pub group: usize,
    fpcs: Vec<FpcTimer>,
    rr: usize,
    table: SharedConnTable,
    /// Routing.
    pub dma: NodeId,
    pub sched: NodeId,
    pub ctxq: NodeId,
    pub acks_prepared: u64,
    pub notifications: u64,
}

impl PostStage {
    pub fn new(
        cfg: SharedCfg,
        group: usize,
        table: SharedConnTable,
        dma: NodeId,
        sched: NodeId,
        ctxq: NodeId,
    ) -> PostStage {
        let fpcs = (0..cfg.post_replicas.max(1))
            .map(|_| FpcTimer::new(cfg.platform.clock, cfg.threads_per_fpc))
            .collect();
        PostStage {
            cfg,
            group,
            fpcs,
            rr: 0,
            table,
            dma,
            sched,
            ctxq,
            acks_prepared: 0,
            notifications: 0,
        }
    }

    fn exec(&mut self, ctx: &mut Ctx<'_>, cost: flextoe_nfp::Cost) -> flextoe_sim::Duration {
        let i = self.rr % self.fpcs.len();
        self.rr += 1;
        let done = self.fpcs[i].execute(ctx.now(), cost + self.cfg.trace_cost());
        done.saturating_since(ctx.now())
    }

    /// Build an ACK frame by reversing the identity of a received segment
    /// and stamping ECN/timestamp feedback (Ack + ECN + Stamp).
    fn build_ack(
        &self,
        now_us: u32,
        view: &flextoe_wire::SegmentView,
        out: &crate::proto::RxOutcome,
        tsval_peer: u32,
        fin_ack: bool,
    ) -> Vec<u8> {
        let mut flags = TcpFlags::ACK;
        if out.ecn_echo {
            flags = flags | TcpFlags::ECE;
        }
        let _ = fin_ack; // the ack number already covers the FIN
        let spec = SegmentSpec {
            src_mac: view.dst_mac,
            dst_mac: view.src_mac,
            src_ip: view.dst_ip,
            dst_ip: view.src_ip,
            src_port: view.dst_port,
            dst_port: view.src_port,
            seq: out.ack_seq,
            ack: out.ack_no,
            flags,
            window: out.ack_window,
            ecn: Ecn::NotEct,
            options: TcpOptions {
                timestamp: Some((now_us, tsval_peer)),
                ..Default::default()
            },
            payload_len: 0,
        };
        spec.emit_zeroed()
    }
}

impl Node for PostStage {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let pm = cast::<PipelineMsg>(msg);
        let now_us = ctx.now().as_us() as u32;
        match pm.work {
            Work::Rx(w) => {
                let out = w.outcome.expect("post stage after protocol");
                let view = w.view.expect("post stage after pre");
                let mut cost = costs::POST_RX;

                // ---- Stats: congestion counters + RTT estimate ----------
                let mut table = self.table.borrow_mut();
                let Some(entry) = table.get_mut(w.conn) else {
                    return;
                };
                let post = &mut entry.post;
                post.cnt_ackb += out.acked_bytes;
                if w.summary.ecn_ce {
                    post.cnt_ecnb += w.summary.payload_len;
                }
                if out.fast_retransmit {
                    post.cnt_fretx = post.cnt_fretx.saturating_add(1);
                }
                if let Some(tsecr) = out.rtt_sample_ts {
                    // our ACK stamps carry microseconds; RTT = now - echo
                    let rtt = now_us.wrapping_sub(tsecr);
                    if rtt < 1_000_000 {
                        // EWMA 7/8, as TAS
                        post.rtt_est = if post.rtt_est == 0 {
                            rtt
                        } else {
                            (post.rtt_est * 7 + rtt) / 8
                        };
                    }
                }
                let ctx_id = post.context;
                drop(table);

                // ---- FS update -------------------------------------------
                if out.update_scheduler {
                    ctx.send(
                        self.sched,
                        self.cfg.hop_cross(),
                        FsUpdate {
                            conn: w.conn,
                            sendable: out.sendable,
                        },
                    );
                }

                // ---- Ack + ECN + Stamp -----------------------------------
                let ack = if out.send_ack {
                    self.acks_prepared += 1;
                    cost += costs::CHECKSUM;
                    let frame =
                        self.build_ack(now_us, &view, &out, w.summary.tsval, out.fin_delivered);
                    Some((w.nbi_seq.expect("proto assigned nbi for ack"), frame))
                } else {
                    None
                };

                // ---- Notifications ---------------------------------------
                let mut notifies = Vec::new();
                if out.delivered > 0 || out.fin_delivered {
                    notifies.push((
                        ctx_id,
                        NicToApp::RxAvail {
                            conn: w.conn,
                            len: out.delivered,
                            fin: out.fin_delivered,
                        },
                    ));
                }
                if out.acked_bytes > 0 {
                    notifies.push((
                        ctx_id,
                        NicToApp::TxFreed {
                            conn: w.conn,
                            len: out.acked_bytes,
                        },
                    ));
                }
                self.notifications += notifies.len() as u64;

                // ---- Pos: hand off to the DMA stage -----------------------
                let d = self.exec(ctx, cost);
                ctx.send(
                    self.dma,
                    d + self.cfg.hop_cross(),
                    DmaJob {
                        conn: w.conn,
                        group: self.group,
                        kind: DmaJobKind::RxPlace {
                            frame: w.frame,
                            placement: out.placement,
                            ack,
                            notifies,
                        },
                    },
                );
            }
            Work::Tx(w) => {
                let seg = w.seg.expect("post stage after protocol");
                let spec = w.spec.expect("post stage after pre");
                if let Some(sendable) = w.sendable_after {
                    ctx.send(
                        self.sched,
                        self.cfg.hop_cross(),
                        FsUpdate {
                            conn: w.conn,
                            sendable,
                        },
                    );
                }
                let d = self.exec(ctx, costs::POST_TX);
                ctx.send(
                    self.dma,
                    d + self.cfg.hop_cross(),
                    DmaJob {
                        conn: w.conn,
                        group: self.group,
                        kind: DmaJobKind::TxFetch {
                            nbi_seq: w.nbi_seq.expect("proto assigned nbi for tx"),
                            spec,
                            seg,
                        },
                    },
                );
            }
            Work::Hc(w) => {
                // FS + Free (Figure 4)
                if let Some(sendable) = w.sendable_after {
                    ctx.send(
                        self.sched,
                        self.cfg.hop_cross(),
                        FsUpdate {
                            conn: w.conn,
                            sendable,
                        },
                    );
                }
                let mut cost = costs::POST_HC;
                // Window-update ACK (receive window re-opened).
                if let (Some(seg), Some(nbi_seq)) = (w.win_ack, w.nbi_seq) {
                    cost += costs::CHECKSUM;
                    let table = self.table.borrow();
                    if let Some(entry) = table.get(w.conn) {
                        let frame = ack_from_identity(&table.nic, &entry.pre, &seg, now_us);
                        drop(table);
                        let d = self.exec(ctx, cost);
                        ctx.send(
                            self.dma,
                            d + self.cfg.hop_cross(),
                            DmaJob {
                                conn: w.conn,
                                group: self.group,
                                kind: DmaJobKind::AckOnly { nbi_seq, frame },
                            },
                        );
                        ctx.send(self.ctxq, self.cfg.hop_cross(), FreeDesc);
                        return;
                    }
                }
                let d = self.exec(ctx, cost);
                // return the HC descriptor to the pool (Free)
                ctx.send(self.ctxq, d + self.cfg.hop_cross(), FreeDesc);
            }
        }
    }

    fn name(&self) -> String {
        format!("post-stage[{}]", self.group)
    }
}

/// Build a bare ACK from connection identity (window updates).
fn ack_from_identity(
    nic: &crate::segment::NicConfig,
    pre: &crate::state::PreState,
    seg: &TxSeg,
    now_us: u32,
) -> Vec<u8> {
    SegmentSpec {
        src_mac: nic.mac,
        dst_mac: pre.peer_mac,
        src_ip: nic.ip,
        dst_ip: pre.peer_ip,
        src_port: pre.local_port,
        dst_port: pre.remote_port,
        seq: seg.seq,
        ack: seg.ack,
        flags: TcpFlags::ACK,
        window: seg.window,
        ecn: Ecn::NotEct,
        options: TcpOptions {
            timestamp: Some((now_us, seg.ts_echo)),
            ..Default::default()
        },
        payload_len: 0,
    }
    .emit_zeroed()
}
