//! The FlexTOE module API (§3.3).
//!
//! "The FlexTOE module API provides developers one-shot access to TCP
//! segments and associated meta-data. … Modules may also keep private
//! state. For scalability, private state cannot be accessed by other
//! modules or replicas of the same module."
//!
//! Modules are hooked into pipeline stages; each invocation returns an
//! action plus the hardware cost to charge to the stage's FPC. XDP
//! programs (eBPF) are adapted to the same interface.

use flextoe_ebpf::{verify, Insn, MapSet, SharedMaps, Vm, XdpAction};
use flextoe_nfp::Cost;
use flextoe_sim::Time;
use flextoe_wire::PcapWriter;

use crate::costs::ext;

/// Where a module is hooked (§3.3: modules are "hooked into the
/// data-flow" at a stage boundary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hook {
    /// On raw ingress frames, before pre-processing (XDP's position).
    RxIngress,
    /// On fully-formed egress frames, before NBI admission.
    TxEgress,
}

/// What the pipeline should do with the segment after the module ran.
#[derive(Debug, PartialEq, Eq)]
pub enum ModuleVerdict {
    /// Forward to the next pipeline stage.
    Pass,
    /// Drop the segment.
    Drop,
    /// Send the segment out the MAC immediately (bypass the data-path).
    Tx,
    /// Redirect the segment to the control plane.
    Redirect,
}

/// A data-path module instance. `process` may rewrite the frame in place.
pub trait DataPathModule {
    fn name(&self) -> &str;
    fn hook(&self) -> Hook;
    /// Process one frame; returns the verdict and the FPC cost to charge.
    fn process(&mut self, now: Time, frame: &mut Vec<u8>) -> (ModuleVerdict, Cost);
    /// Concrete-type access for result harvesting (pcap buffers, map
    /// handles); modules that expose state override this.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Adapter: run an eBPF/XDP program as a data-path module. "FlexTOE
/// automatically reorders processed segments after a parallel XDP stage"
/// — the pipeline's sequencing layer takes care of that (§3.2).
pub struct XdpModule {
    name: String,
    hook: Hook,
    prog: Vec<Insn>,
    vm: Vm,
    maps: SharedMaps,
    pub runs: u64,
    pub aborted: u64,
}

impl XdpModule {
    /// Load (and verify) a program. Fails exactly like the NFP offload
    /// toolchain would at load time.
    pub fn load(
        name: &str,
        hook: Hook,
        prog: Vec<Insn>,
        maps: SharedMaps,
    ) -> Result<XdpModule, flextoe_ebpf::VerifyError> {
        verify(&prog)?;
        Ok(XdpModule {
            name: name.to_string(),
            hook,
            prog,
            vm: Vm::new(),
            maps,
            runs: 0,
            aborted: 0,
        })
    }

    pub fn maps(&self) -> &SharedMaps {
        &self.maps
    }
}

impl DataPathModule for XdpModule {
    fn name(&self) -> &str {
        &self.name
    }
    fn hook(&self) -> Hook {
        self.hook
    }

    fn process(&mut self, _now: Time, frame: &mut Vec<u8>) -> (ModuleVerdict, Cost) {
        self.runs += 1;
        let mut maps = self.maps.borrow_mut();
        let result = self.vm.run(&self.prog, frame, &mut maps);
        drop(maps);
        match result {
            Ok(res) => {
                if res.head_adjust > 0 {
                    frame.drain(..res.head_adjust as usize);
                }
                let cost = Cost::new(
                    ext::XDP_HARNESS.compute + res.insns * ext::EBPF_PER_INSN.compute,
                    ext::XDP_HARNESS.mem,
                );
                let verdict = match XdpAction::from_ret(res.ret) {
                    XdpAction::Pass => ModuleVerdict::Pass,
                    XdpAction::Drop => ModuleVerdict::Drop,
                    XdpAction::Tx => ModuleVerdict::Tx,
                    XdpAction::Redirect => ModuleVerdict::Redirect,
                    XdpAction::Aborted => {
                        self.aborted += 1;
                        ModuleVerdict::Drop
                    }
                };
                (verdict, cost)
            }
            Err(_) => {
                // A trapping program drops the packet (XDP_ABORTED).
                self.aborted += 1;
                (ModuleVerdict::Drop, ext::XDP_HARNESS)
            }
        }
    }
}

/// Predicate selecting which frames a capture module records.
pub type FrameFilter = Box<dyn Fn(&[u8]) -> bool>;

/// tcpdump-style traffic logging with an optional header filter
/// (Table 2's "tcpdump (no filter)" row: every packet captured).
pub struct TcpdumpModule {
    hook: Hook,
    pub pcap: PcapWriter,
    /// Optional filter over the raw frame; `None` captures everything.
    filter: Option<FrameFilter>,
}

impl TcpdumpModule {
    pub fn new(hook: Hook) -> TcpdumpModule {
        TcpdumpModule {
            hook,
            pcap: PcapWriter::new(),
            filter: None,
        }
    }

    pub fn with_filter(hook: Hook, filter: FrameFilter) -> TcpdumpModule {
        TcpdumpModule {
            hook,
            pcap: PcapWriter::new(),
            filter: Some(filter),
        }
    }
}

impl DataPathModule for TcpdumpModule {
    fn name(&self) -> &str {
        "tcpdump"
    }
    fn hook(&self) -> Hook {
        self.hook
    }
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
    fn process(&mut self, now: Time, frame: &mut Vec<u8>) -> (ModuleVerdict, Cost) {
        let capture = self.filter.as_ref().map(|f| f(frame)).unwrap_or(true);
        if capture {
            self.pcap.record(now.as_us(), frame);
            (ModuleVerdict::Pass, ext::TCPDUMP_CAPTURE)
        } else {
            // filter evaluation alone is much cheaper
            (
                ModuleVerdict::Pass,
                Cost::new(ext::TCPDUMP_CAPTURE.compute / 4, 0),
            )
        }
    }
}

/// A chain of modules at one hook point.
#[derive(Default)]
pub struct ModuleChain {
    modules: Vec<Box<dyn DataPathModule>>,
}

impl ModuleChain {
    pub fn new() -> ModuleChain {
        ModuleChain::default()
    }

    pub fn push(&mut self, m: Box<dyn DataPathModule>) {
        self.modules.push(m);
    }

    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Run the chain; the first non-Pass verdict wins. Returns the verdict
    /// and the total cost of all modules executed.
    pub fn run(&mut self, now: Time, frame: &mut Vec<u8>) -> (ModuleVerdict, Cost) {
        let mut total = Cost::ZERO;
        for m in &mut self.modules {
            let (verdict, cost) = m.process(now, frame);
            total += cost;
            if verdict != ModuleVerdict::Pass {
                return (verdict, total);
            }
        }
        (ModuleVerdict::Pass, total)
    }

    /// Borrow a module by name (result harvest, e.g. the pcap buffer).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut (dyn DataPathModule + '_)> {
        self.modules
            .iter_mut()
            .find(|m| m.name() == name)
            .map(|b| &mut **b as _)
    }
}

/// Convenience: build an XDP module from one of the prebuilt programs
/// with a fresh map set; returns the module and its maps handle.
pub fn xdp_with_maps(
    name: &str,
    hook: Hook,
    build: impl FnOnce(&mut MapSet) -> Vec<Insn>,
) -> (XdpModule, SharedMaps) {
    let maps = flextoe_ebpf::shared_maps();
    let prog = build(&mut maps.borrow_mut());
    let m = XdpModule::load(name, hook, prog, maps.clone()).expect("prebuilt program verifies");
    (m, maps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_ebpf::programs;

    #[test]
    fn xdp_null_module_passes_with_small_cost() {
        let (mut m, _) = xdp_with_maps("null", Hook::RxIngress, |_| programs::null_pass());
        let mut frame = vec![0u8; 64];
        let (v, cost) = m.process(Time::ZERO, &mut frame);
        assert_eq!(v, ModuleVerdict::Pass);
        assert!(cost.compute >= ext::XDP_HARNESS.compute);
        assert!(cost.compute < 100, "null program must be cheap: {cost:?}");
        assert_eq!(m.runs, 1);
    }

    #[test]
    fn xdp_drop_module_drops() {
        let (mut m, _) = xdp_with_maps("drop", Hook::RxIngress, |_| programs::drop_all());
        let mut frame = vec![0u8; 64];
        assert_eq!(m.process(Time::ZERO, &mut frame).0, ModuleVerdict::Drop);
    }

    #[test]
    fn chain_short_circuits_on_drop() {
        let mut chain = ModuleChain::new();
        let (drop_m, _) = xdp_with_maps("drop", Hook::RxIngress, |_| programs::drop_all());
        let (null_m, _) = xdp_with_maps("null", Hook::RxIngress, |_| programs::null_pass());
        chain.push(Box::new(drop_m));
        chain.push(Box::new(null_m));
        let mut frame = vec![0u8; 64];
        let (v, _) = chain.run(Time::ZERO, &mut frame);
        assert_eq!(v, ModuleVerdict::Drop);
        // second module never ran
        assert_eq!(
            chain.get_mut("null").map(|_| ()),
            Some(()),
            "modules addressable by name"
        );
    }

    #[test]
    fn tcpdump_captures_and_charges() {
        let mut m = TcpdumpModule::new(Hook::RxIngress);
        let mut f1 = vec![1u8; 100];
        let mut f2 = vec![2u8; 200];
        m.process(Time::from_us(1), &mut f1);
        let (v, cost) = m.process(Time::from_us(2), &mut f2);
        assert_eq!(v, ModuleVerdict::Pass);
        assert_eq!(cost, ext::TCPDUMP_CAPTURE);
        assert_eq!(m.pcap.packets(), 2);
        let recs = flextoe_wire::pcap::parse(m.pcap.bytes()).unwrap();
        assert_eq!(recs[1].data.len(), 200);
    }

    #[test]
    fn tcpdump_filter_reduces_cost() {
        let mut m = TcpdumpModule::with_filter(Hook::RxIngress, Box::new(|f| f[0] == 0x55));
        let mut nomatch = vec![0u8; 64];
        let (_, cheap) = m.process(Time::ZERO, &mut nomatch);
        let mut hit = vec![0x55u8; 64];
        let (_, full) = m.process(Time::ZERO, &mut hit);
        assert!(cheap.compute < full.compute);
        assert_eq!(m.pcap.packets(), 1);
    }

    #[test]
    fn broken_program_rejected_at_load() {
        let maps = flextoe_ebpf::shared_maps();
        let res = XdpModule::load("bad", Hook::RxIngress, vec![], maps);
        assert!(res.is_err());
    }
}
