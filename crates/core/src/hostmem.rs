//! Host-memory structures shared between libTOE, the control plane, and
//! the NIC data-path: per-socket payload buffers and per-thread context
//! queues (Figure 2).
//!
//! In the real system these live in 1 GB hugepages mapped into all three
//! protection domains, accessed by the NIC through DMA; here they are
//! `Rc<RefCell<…>>` shared by the simulation nodes, with DMA/MMIO *timing*
//! charged through `flextoe-nfp`. Segments are never buffered on the NIC —
//! one-shot offload (§3 design principle 1) — so these buffers are the
//! only payload storage in the system.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A per-socket circular payload buffer (RX or TX PAYLOAD-BUF).
///
/// Positions are *free-running* u32 byte counters (wrapping mod 2³²); the
/// buffer index is `pos % size`. Producers and consumers track their own
/// positions; the buffer itself is raw storage, exactly like a hugepage
/// region.
#[derive(Debug)]
pub struct PayloadBuf {
    data: Vec<u8>,
}

impl PayloadBuf {
    pub fn new(size: u32) -> PayloadBuf {
        assert!(
            size > 0 && size.is_power_of_two(),
            "size must be a power of two"
        );
        PayloadBuf {
            data: vec![0; size as usize],
        }
    }

    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    #[inline]
    fn idx(&self, pos: u32) -> usize {
        (pos as usize) & (self.data.len() - 1)
    }

    /// Copy `src` into the buffer at linear position `pos` (wraps).
    pub fn write(&mut self, pos: u32, src: &[u8]) {
        assert!(src.len() <= self.data.len(), "write larger than buffer");
        let start = self.idx(pos);
        let first = (self.data.len() - start).min(src.len());
        self.data[start..start + first].copy_from_slice(&src[..first]);
        if first < src.len() {
            self.data[..src.len() - first].copy_from_slice(&src[first..]);
        }
    }

    /// Copy `len` bytes at linear position `pos` into `dst` (wraps).
    pub fn read(&self, pos: u32, dst: &mut [u8]) {
        assert!(dst.len() <= self.data.len(), "read larger than buffer");
        let start = self.idx(pos);
        let first = (self.data.len() - start).min(dst.len());
        dst[..first].copy_from_slice(&self.data[start..start + first]);
        if first < dst.len() {
            let rest = dst.len() - first;
            dst[first..].copy_from_slice(&self.data[..rest]);
        }
    }

    pub fn read_vec(&self, pos: u32, len: u32) -> Vec<u8> {
        let mut v = vec![0; len as usize];
        self.read(pos, &mut v);
        v
    }
}

/// Shared handle to a payload buffer.
pub type SharedBuf = Rc<RefCell<PayloadBuf>>;

pub fn shared_buf(size: u32) -> SharedBuf {
    Rc::new(RefCell::new(PayloadBuf::new(size)))
}

/// Descriptors the application/control-plane sends to the NIC (via a
/// context queue + doorbell; §3.1.1 "HC requests may be batched").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppToNic {
    /// libTOE appended `len` bytes to the socket TX buffer.
    TxAppend { conn: u32, len: u32 },
    /// libTOE consumed `len` bytes from the socket RX buffer.
    RxConsumed { conn: u32, len: u32 },
    /// Application closed the connection (FIN after pending data).
    Close { conn: u32 },
    /// Control plane: retransmission timeout — reset to go-back-N.
    Retransmit { conn: u32 },
}

/// Notifications the NIC data-path delivers to libTOE (§3.1.3 "Notify").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicToApp {
    /// `len` new bytes are readable in the socket RX buffer.
    RxAvail { conn: u32, len: u32, fin: bool },
    /// `len` bytes of the socket TX buffer were acknowledged and freed.
    TxFreed { conn: u32, len: u32 },
    /// The control plane gave up on the connection (RTO retry budget
    /// exhausted) and tore it down; the application must stop using it.
    Aborted { conn: u32 },
}

/// One direction of a context queue (bounded, in host shared memory).
#[derive(Debug)]
pub struct CtxQueueInner<T> {
    q: VecDeque<T>,
    capacity: usize,
    pub enqueued: u64,
    pub full_rejects: u64,
}

impl<T> CtxQueueInner<T> {
    pub fn new(capacity: usize) -> Self {
        CtxQueueInner {
            q: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            enqueued: 0,
            full_rejects: 0,
        }
    }

    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.q.len() >= self.capacity {
            self.full_rejects += 1;
            return Err(item);
        }
        self.q.push_back(item);
        self.enqueued += 1;
        Ok(())
    }

    pub fn pop(&mut self) -> Option<T> {
        self.q.pop_front()
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Drain up to `n` entries (doorbell batching).
    pub fn pop_batch(&mut self, n: usize) -> Vec<T> {
        let mut out = Vec::new();
        self.pop_batch_into(n, &mut out);
        out
    }

    /// [`Self::pop_batch`] into a caller-owned buffer (hot callers recycle
    /// the buffer instead of allocating per doorbell).
    pub fn pop_batch_into(&mut self, n: usize, out: &mut Vec<T>) {
        let take = n.min(self.q.len());
        out.extend(self.q.drain(..take));
    }
}

/// A per-thread context-queue pair (Figure 2: "pairs of context queues,
/// one for each communication direction").
#[derive(Debug)]
pub struct CtxQueuePair {
    pub to_nic: CtxQueueInner<AppToNic>,
    pub to_app: CtxQueueInner<NicToApp>,
}

impl CtxQueuePair {
    pub fn new(capacity: usize) -> CtxQueuePair {
        CtxQueuePair {
            to_nic: CtxQueueInner::new(capacity),
            to_app: CtxQueueInner::new(capacity),
        }
    }
}

pub type SharedCtxQueue = Rc<RefCell<CtxQueuePair>>;

pub fn shared_ctxq(capacity: usize) -> SharedCtxQueue {
    Rc::new(RefCell::new(CtxQueuePair::new(capacity)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut b = PayloadBuf::new(64);
        b.write(10, b"hello");
        let mut out = [0u8; 5];
        b.read(10, &mut out);
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn wrapping_write_and_read() {
        let mut b = PayloadBuf::new(16);
        b.write(12, b"abcdefgh"); // wraps: 12..16 then 0..4
        assert_eq!(b.read_vec(12, 8), b"abcdefgh");
        assert_eq!(b.read_vec(14, 2), b"cd");
        assert_eq!(b.read_vec(0, 4), b"efgh");
    }

    #[test]
    fn free_running_positions_wrap_mod_size() {
        let mut b = PayloadBuf::new(16);
        b.write(5, b"xy");
        // position 5 + k*16 aliases the same cells
        assert_eq!(b.read_vec(5 + 32, 2), b"xy");
        b.write(u32::MAX - 1, b"zw"); // positions 2^32-2, 2^32-1 -> idx 14,15
        assert_eq!(b.read_vec(14, 2), b"zw");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        PayloadBuf::new(100);
    }

    #[test]
    fn ctx_queue_fifo_and_capacity() {
        let mut q: CtxQueueInner<u32> = CtxQueueInner::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.full_rejects, 1);
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop_batch(10), vec![2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn ctx_queue_pair_directions_independent() {
        let pair = shared_ctxq(8);
        pair.borrow_mut()
            .to_nic
            .push(AppToNic::TxAppend { conn: 1, len: 64 })
            .unwrap();
        pair.borrow_mut()
            .to_app
            .push(NicToApp::TxFreed { conn: 1, len: 64 })
            .unwrap();
        assert_eq!(pair.borrow().to_nic.len(), 1);
        assert_eq!(pair.borrow().to_app.len(), 1);
        assert_eq!(
            pair.borrow_mut().to_nic.pop(),
            Some(AppToNic::TxAppend { conn: 1, len: 64 })
        );
    }
}
