//! Pipeline assembly: wires the data-path stages, the hardware models,
//! and the MAC into a simulation (Figure 2 + §4.1 "FPC mapping").

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_ccp::{shared_datapath, MeasureCfg, SharedCcp};
use flextoe_nfp::{ConnDb, DmaEngine, MacPort};
use flextoe_sim::{NodeId, Sim};

use crate::segment::{
    shared_conn_table, shared_seg_pool, shared_work_pool, NicConfig, SharedConnTable,
    SharedSegPool, SharedWorkPool,
};
use crate::stages::{
    ctxq::CtxqStage, dmast::DmaStage, post::PostStage, pre::PreStage, proto_stage::ProtoStage,
    schedn::SchedNode, seqr::SeqrNode, PipeCfg, SharedCfg,
};

/// All node ids and shared handles of one FlexTOE NIC instance.
pub struct FlexToeNic {
    pub cfg: SharedCfg,
    pub seqr: NodeId,
    pub pre: NodeId,
    pub protos: Vec<NodeId>,
    pub posts: Vec<NodeId>,
    pub dma_stage: NodeId,
    pub dma_engine: NodeId,
    pub ctxq: NodeId,
    pub sched: NodeId,
    pub mac: NodeId,
    /// The control-plane node this NIC redirects non-data-path traffic to.
    pub ctrl: NodeId,
    pub table: SharedConnTable,
    pub db: Rc<RefCell<ConnDb>>,
    /// Slab of in-flight pipeline work items (tokens travel the queue).
    pub work_pool: SharedWorkPool,
    /// Recycled per-packet byte buffers.
    pub seg_pool: SharedSegPool,
    /// Congestion-measurement layer: per-flow fold state + the pooled
    /// report batches shared with the control plane (flextoe-ccp).
    pub ccp: SharedCcp,
}

impl FlexToeNic {
    /// Build a NIC into `sim`. `wire_out` is where egress frames go (a
    /// link endpoint); `ctrl` is the control-plane node (may be a
    /// reserved id filled later). Ingress frames must be delivered to the
    /// returned `mac` node.
    pub fn build(
        sim: &mut Sim,
        cfg: PipeCfg,
        nic_cfg: NicConfig,
        wire_out: NodeId,
        ctrl: NodeId,
    ) -> FlexToeNic {
        let cfg: SharedCfg = Rc::new(cfg);
        let table = shared_conn_table(nic_cfg);
        let db = Rc::new(RefCell::new(ConnDb::new(&cfg.platform)));
        let work_pool = shared_work_pool();
        let seg_pool = shared_seg_pool();
        // pool-exhaustion knobs: a capped pool turns overload into counted
        // RX sheds at the sequencer instead of unbounded growth
        work_pool.borrow_mut().capacity = cfg.work_pool_cap;
        seg_pool.borrow_mut().set_capacity(cfg.seg_pool_cap);
        let ccp = shared_datapath(MeasureCfg::default());

        // reserve everything first (the graph is cyclic)
        let seqr = sim.reserve_node();
        let pre = sim.reserve_node();
        let protos: Vec<NodeId> = (0..cfg.n_groups).map(|_| sim.reserve_node()).collect();
        let posts: Vec<NodeId> = (0..cfg.n_groups).map(|_| sim.reserve_node()).collect();
        let dma_stage = sim.reserve_node();
        let dma_engine = sim.reserve_node();
        let ctxq = sim.reserve_node();
        let sched = sim.reserve_node();
        let mac = sim.reserve_node();

        sim.fill_node(mac, MacPort::new(cfg.platform.mac_bps, wire_out, seqr));
        sim.fill_node(dma_engine, DmaEngine::new(cfg.platform.pcie));

        let mut seqr_node = SeqrNode::new(cfg.clone(), work_pool.clone(), mac);
        seqr_node.pre_pool = vec![pre];
        seqr_node.protos = protos.clone();
        seqr_node.mac = mac;
        seqr_node.seg_pool = Some(seg_pool.clone());
        sim.fill_node(seqr, seqr_node);

        sim.fill_node(
            pre,
            PreStage::new(
                cfg.clone(),
                table.clone(),
                work_pool.clone(),
                seg_pool.clone(),
                db.clone(),
                seqr,
                ctrl,
                mac,
            ),
        );

        for g in 0..cfg.n_groups {
            sim.fill_node(
                protos[g],
                ProtoStage::new(
                    cfg.clone(),
                    g,
                    table.clone(),
                    work_pool.clone(),
                    seg_pool.clone(),
                    posts[g],
                ),
            );
            sim.fill_node(
                posts[g],
                PostStage::new(
                    cfg.clone(),
                    g,
                    table.clone(),
                    work_pool.clone(),
                    seg_pool.clone(),
                    ccp.clone(),
                    dma_stage,
                    sched,
                    ctxq,
                    ctrl,
                ),
            );
        }

        sim.fill_node(
            dma_stage,
            DmaStage::new(
                cfg.clone(),
                table.clone(),
                work_pool.clone(),
                seg_pool.clone(),
                dma_engine,
                seqr,
                ctxq,
            ),
        );
        sim.fill_node(
            ctxq,
            CtxqStage::new(cfg.clone(), work_pool.clone(), dma_engine, seqr),
        );
        sim.fill_node(sched, SchedNode::new(cfg.clone(), work_pool.clone(), seqr));

        FlexToeNic {
            cfg,
            seqr,
            pre,
            protos,
            posts,
            dma_stage,
            dma_engine,
            ctxq,
            sched,
            mac,
            ctrl,
            table,
            db,
            work_pool,
            seg_pool,
            ccp,
        }
    }

    /// Snapshot the NIC's pool and cache pressure gauges. Reads the
    /// shared pools directly and the per-group protocol stages through
    /// `sim`, so call it between runs (not from inside a handler).
    pub fn pool_gauges(&self, sim: &Sim) -> PoolGauges {
        let work = self.work_pool.borrow();
        let seg = self.seg_pool.borrow();
        let mut g = PoolGauges {
            work_in_use: work.in_use(),
            work_high_water: work.high_water,
            seg_in_flight: seg.in_flight(),
            seg_high_water: seg.high_water,
            seg_idle: seg.idle(),
            ..Default::default()
        };
        for &p in &self.protos {
            let cache = sim
                .node_ref::<crate::stages::proto_stage::ProtoStage>(p)
                .state_cache();
            g.cache_occupancy += cache.occupancy();
            g.cache_high_water += cache.occ_high_water;
            g.cache_local_hits += cache.local_hits;
            g.cache_cls_hits += cache.cls_hits;
            g.cache_sram_hits += cache.sram_hits;
            g.cache_dram_accesses += cache.dram_accesses;
        }
        g
    }

    /// Lightweight handle for the control plane and libTOE.
    pub fn handle(&self) -> NicHandle {
        NicHandle {
            cfg: self.cfg.clone(),
            table: self.table.clone(),
            db: self.db.clone(),
            ccp: self.ccp.clone(),
            sched: self.sched,
            ctxq: self.ctxq,
            mac: self.mac,
        }
    }
}

/// Pool and connection-state-cache pressure gauges of one NIC: work-pool
/// and packet-buffer high-water marks plus the protocol stages' cache
/// hierarchy counters (summed across flow groups). The scale sweep — and
/// any future experiment — reads pressure from here instead of debug
/// prints; [`PoolGauges::export`] mirrors it onto the named-counter stats
/// surface.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolGauges {
    /// Work-pool slots holding live items right now (0 after quiescence).
    pub work_in_use: usize,
    /// Most work-pool slots ever simultaneously live.
    pub work_high_water: usize,
    /// Packet buffers outstanding right now.
    pub seg_in_flight: u64,
    /// Most packet buffers ever simultaneously outstanding.
    pub seg_high_water: u64,
    /// Packet buffers idle in the free list.
    pub seg_idle: usize,
    /// Connection-state entries resident in the EMEM SRAM caches.
    pub cache_occupancy: usize,
    /// High-water mark of that residency (distinct-connection footprint).
    pub cache_high_water: usize,
    pub cache_local_hits: u64,
    pub cache_cls_hits: u64,
    pub cache_sram_hits: u64,
    pub cache_dram_accesses: u64,
}

impl PoolGauges {
    /// Accumulate another NIC's gauges (fleet-wide aggregation). Lives
    /// next to the struct so a new field cannot be silently dropped from
    /// aggregates.
    pub fn merge(&mut self, other: &PoolGauges) {
        self.work_in_use += other.work_in_use;
        self.work_high_water += other.work_high_water;
        self.seg_in_flight += other.seg_in_flight;
        self.seg_high_water += other.seg_high_water;
        self.seg_idle += other.seg_idle;
        self.cache_occupancy += other.cache_occupancy;
        self.cache_high_water += other.cache_high_water;
        self.cache_local_hits += other.cache_local_hits;
        self.cache_cls_hits += other.cache_cls_hits;
        self.cache_sram_hits += other.cache_sram_hits;
        self.cache_dram_accesses += other.cache_dram_accesses;
    }

    /// Publish the gauges as named counters (`{prefix}.work_pool.hwm`,
    /// `{prefix}.pktbuf.hwm`, `{prefix}.conn_cache.hwm`, …).
    pub fn export(&self, stats: &mut flextoe_sim::Stats, prefix: &str) {
        let set = |stats: &mut flextoe_sim::Stats, name: &str, v: u64| {
            let h = stats.counter(&format!("{prefix}.{name}"));
            stats.set(h, v);
        };
        set(stats, "work_pool.in_use", self.work_in_use as u64);
        set(stats, "work_pool.hwm", self.work_high_water as u64);
        set(stats, "pktbuf.in_flight", self.seg_in_flight);
        set(stats, "pktbuf.hwm", self.seg_high_water);
        set(stats, "pktbuf.idle", self.seg_idle as u64);
        set(stats, "conn_cache.occupancy", self.cache_occupancy as u64);
        set(stats, "conn_cache.hwm", self.cache_high_water as u64);
        set(stats, "conn_cache.local_hits", self.cache_local_hits);
        set(stats, "conn_cache.cls_hits", self.cache_cls_hits);
        set(stats, "conn_cache.sram_hits", self.cache_sram_hits);
        set(stats, "conn_cache.dram", self.cache_dram_accesses);
    }
}

/// The subset of NIC access the control plane and libTOE need.
#[derive(Clone)]
pub struct NicHandle {
    pub cfg: SharedCfg,
    pub table: SharedConnTable,
    pub db: Rc<RefCell<ConnDb>>,
    /// Measurement layer: fold install/uninstall + report-pool access.
    pub ccp: SharedCcp,
    pub sched: NodeId,
    pub ctxq: NodeId,
    pub mac: NodeId,
}
