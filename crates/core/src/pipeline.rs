//! Pipeline assembly: wires the data-path stages, the hardware models,
//! and the MAC into a simulation (Figure 2 + §4.1 "FPC mapping").

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_ccp::{shared_datapath, MeasureCfg, SharedCcp};
use flextoe_nfp::{ConnDb, DmaEngine, MacPort};
use flextoe_sim::{NodeId, Sim};

use crate::segment::{
    shared_conn_table, shared_seg_pool, shared_work_pool, NicConfig, SharedConnTable,
    SharedSegPool, SharedWorkPool,
};
use crate::stages::{
    ctxq::CtxqStage, dmast::DmaStage, post::PostStage, pre::PreStage, proto_stage::ProtoStage,
    schedn::SchedNode, seqr::SeqrNode, PipeCfg, SharedCfg,
};

/// All node ids and shared handles of one FlexTOE NIC instance.
pub struct FlexToeNic {
    pub cfg: SharedCfg,
    pub seqr: NodeId,
    pub pre: NodeId,
    pub protos: Vec<NodeId>,
    pub posts: Vec<NodeId>,
    pub dma_stage: NodeId,
    pub dma_engine: NodeId,
    pub ctxq: NodeId,
    pub sched: NodeId,
    pub mac: NodeId,
    /// The control-plane node this NIC redirects non-data-path traffic to.
    pub ctrl: NodeId,
    pub table: SharedConnTable,
    pub db: Rc<RefCell<ConnDb>>,
    /// Slab of in-flight pipeline work items (tokens travel the queue).
    pub work_pool: SharedWorkPool,
    /// Recycled per-packet byte buffers.
    pub seg_pool: SharedSegPool,
    /// Congestion-measurement layer: per-flow fold state + the pooled
    /// report batches shared with the control plane (flextoe-ccp).
    pub ccp: SharedCcp,
}

impl FlexToeNic {
    /// Build a NIC into `sim`. `wire_out` is where egress frames go (a
    /// link endpoint); `ctrl` is the control-plane node (may be a
    /// reserved id filled later). Ingress frames must be delivered to the
    /// returned `mac` node.
    pub fn build(
        sim: &mut Sim,
        cfg: PipeCfg,
        nic_cfg: NicConfig,
        wire_out: NodeId,
        ctrl: NodeId,
    ) -> FlexToeNic {
        let cfg: SharedCfg = Rc::new(cfg);
        let table = shared_conn_table(nic_cfg);
        let db = Rc::new(RefCell::new(ConnDb::new(&cfg.platform)));
        let work_pool = shared_work_pool();
        let seg_pool = shared_seg_pool();
        let ccp = shared_datapath(MeasureCfg::default());

        // reserve everything first (the graph is cyclic)
        let seqr = sim.reserve_node();
        let pre = sim.reserve_node();
        let protos: Vec<NodeId> = (0..cfg.n_groups).map(|_| sim.reserve_node()).collect();
        let posts: Vec<NodeId> = (0..cfg.n_groups).map(|_| sim.reserve_node()).collect();
        let dma_stage = sim.reserve_node();
        let dma_engine = sim.reserve_node();
        let ctxq = sim.reserve_node();
        let sched = sim.reserve_node();
        let mac = sim.reserve_node();

        sim.fill_node(mac, MacPort::new(cfg.platform.mac_bps, wire_out, seqr));
        sim.fill_node(dma_engine, DmaEngine::new(cfg.platform.pcie));

        let mut seqr_node = SeqrNode::new(cfg.clone(), work_pool.clone(), mac);
        seqr_node.pre_pool = vec![pre];
        seqr_node.protos = protos.clone();
        seqr_node.mac = mac;
        sim.fill_node(seqr, seqr_node);

        sim.fill_node(
            pre,
            PreStage::new(
                cfg.clone(),
                table.clone(),
                work_pool.clone(),
                seg_pool.clone(),
                db.clone(),
                seqr,
                ctrl,
                mac,
            ),
        );

        for g in 0..cfg.n_groups {
            sim.fill_node(
                protos[g],
                ProtoStage::new(
                    cfg.clone(),
                    g,
                    table.clone(),
                    work_pool.clone(),
                    seg_pool.clone(),
                    posts[g],
                ),
            );
            sim.fill_node(
                posts[g],
                PostStage::new(
                    cfg.clone(),
                    g,
                    table.clone(),
                    work_pool.clone(),
                    seg_pool.clone(),
                    ccp.clone(),
                    dma_stage,
                    sched,
                    ctxq,
                    ctrl,
                ),
            );
        }

        sim.fill_node(
            dma_stage,
            DmaStage::new(
                cfg.clone(),
                table.clone(),
                work_pool.clone(),
                seg_pool.clone(),
                dma_engine,
                seqr,
                ctxq,
            ),
        );
        sim.fill_node(
            ctxq,
            CtxqStage::new(cfg.clone(), work_pool.clone(), dma_engine, seqr),
        );
        sim.fill_node(sched, SchedNode::new(cfg.clone(), work_pool.clone(), seqr));

        FlexToeNic {
            cfg,
            seqr,
            pre,
            protos,
            posts,
            dma_stage,
            dma_engine,
            ctxq,
            sched,
            mac,
            ctrl,
            table,
            db,
            work_pool,
            seg_pool,
            ccp,
        }
    }

    /// Lightweight handle for the control plane and libTOE.
    pub fn handle(&self) -> NicHandle {
        NicHandle {
            cfg: self.cfg.clone(),
            table: self.table.clone(),
            db: self.db.clone(),
            ccp: self.ccp.clone(),
            sched: self.sched,
            ctxq: self.ctxq,
            mac: self.mac,
        }
    }
}

/// The subset of NIC access the control plane and libTOE need.
#[derive(Clone)]
pub struct NicHandle {
    pub cfg: SharedCfg,
    pub table: SharedConnTable,
    pub db: Rc<RefCell<ConnDb>>,
    /// Measurement layer: fold install/uninstall + report-pool access.
    pub ccp: SharedCcp,
    pub sched: NodeId,
    pub ctxq: NodeId,
    pub mac: NodeId,
}
