//! The protocol stage's TCP logic (§3.1.1–3.1.3), as pure state-machine
//! functions over [`ProtoState`] — no I/O, no clocks (sans-IO, the smoltcp
//! idiom). The pipeline stages charge hardware cost models and move bytes;
//! all sequence/window/reassembly decisions live here, which makes the
//! logic unit- and property-testable in isolation and lets the baseline
//! host stacks (`flextoe-hoststack`) reuse the exact same code
//! run-to-completion — the "Baseline" row of Table 3.
//!
//! Semantics follow TAS, the stack the data-path derives from (§3):
//! go-back-N retransmission, a single receiver out-of-order interval with
//! reassembly directly in the host receive buffer, duplicate-ACK fast
//! retransmit, and an ACK for every received data segment.

use flextoe_wire::{SeqNum, TcpFlags};

use crate::state::ProtoState;

/// The header summary the pre-processor forwards (§3.1.3 "Sum"): "only
/// relevant header fields required by later pipeline stages".
#[derive(Clone, Copy, Debug, Default)]
pub struct RxSummary {
    pub seq: SeqNum,
    pub ack: SeqNum,
    pub flags: TcpFlags,
    pub window: u16,
    pub payload_len: u32,
    pub tsval: u32,
    pub tsecr: u32,
    pub has_ts: bool,
    /// IP ECN field carried Congestion Experienced.
    pub ecn_ce: bool,
}

/// Where received payload lands in the host receive buffer: a linear
/// (free-running, wrapping) buffer position plus the byte range of the
/// frame payload to copy. The DMA stage applies `mod rx_size`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    pub buf_pos: u32,
    pub frame_off: u32,
    pub len: u32,
}

/// Result of protocol-stage RX processing ("Win" in Figure 6) — the
/// "snapshot of relevant connection state" forwarded to post-processing.
#[derive(Clone, Copy, Debug, Default)]
pub struct RxOutcome {
    /// Payload byte placement (at most one range; trims applied).
    pub placement: Option<Placement>,
    /// Bytes newly available to the application, including any flushed
    /// out-of-order interval (drives the RX context-queue notification).
    pub delivered: u32,
    /// Peer FIN consumed in order (application sees EOF).
    pub fin_delivered: bool,
    /// TX-buffer bytes newly acknowledged (freed back to the app).
    pub acked_bytes: u32,
    /// Generate an acknowledgment segment (Ack step in post-processing).
    pub send_ack: bool,
    /// Echo congestion (set ECE on the generated ACK — DCTCP feedback).
    pub ecn_echo: bool,
    /// A fast retransmit was triggered (transmission state was reset).
    pub fast_retransmit: bool,
    /// Segment was dropped (outside window / unusable duplicate).
    pub dropped: bool,
    /// The segment was received out of order (tracepoint counter).
    pub out_of_order: bool,
    /// Peer's timestamp echo (TSecr) for RTT estimation, if present.
    pub rtt_sample_ts: Option<u32>,
    /// Sendability may have changed (window opened / data acked): the
    /// post-processor must update the flow scheduler (FS step).
    pub update_scheduler: bool,
    /// Snapshot fields for the post-processor's Ack step — the protocol
    /// stage "forwards a snapshot of relevant connection state" (§3.1.3)
    /// so later stages never touch protocol state.
    pub ack_seq: SeqNum,
    pub ack_no: SeqNum,
    pub ack_window: u16,
    /// Bytes currently sendable (flow-scheduler FS feedback).
    pub sendable: u32,
}

/// A transmit descriptor produced by the protocol stage ("Seq" in Fig. 5):
/// everything later stages need without touching protocol state again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxSeg {
    pub seq: SeqNum,
    pub ack: SeqNum,
    /// Linear TX-buffer position of the payload (DMA wraps mod tx_size).
    pub buf_pos: u32,
    pub len: u32,
    pub fin: bool,
    pub window: u16,
    /// Peer timestamp to echo (TSecr of our segment).
    pub ts_echo: u32,
}

/// Advertised receive window, clamped to 16 bits (no window scaling —
/// consistent with Table 5's 16-bit `remote_win`).
pub fn advertised_window(ps: &ProtoState) -> u16 {
    ps.rx_avail.min(u16::MAX as u32) as u16
}

/// Reset transmission state to the last acknowledged position —
/// go-back-N (§3.1.1 "Reset", §3.1.3 fast retransmit).
pub fn go_back_n(ps: &mut ProtoState) {
    let rollback = ps.tx_sent;
    if rollback == 0 {
        return;
    }
    let fin_unacked = ps.fin_sent && ps.fin_pending;
    let data_rollback = rollback - u32::from(fin_unacked);
    ps.seq = SeqNum(ps.seq.0.wrapping_sub(rollback));
    ps.tx_pos = ps.tx_pos.wrapping_sub(data_rollback);
    ps.tx_avail += data_rollback;
    ps.tx_sent = 0;
    if fin_unacked {
        ps.fin_sent = false;
    }
    ps.dupack_cnt = 0;
}

/// Protocol-stage processing of one received data-path segment.
pub fn rx_segment(ps: &mut ProtoState, sum: &RxSummary) -> RxOutcome {
    let mut out = rx_segment_inner(ps, sum);
    out.ack_seq = ps.seq;
    out.ack_no = ps.ack;
    out.ack_window = advertised_window(ps);
    out.sendable = ps.sendable_with_fin();
    out
}

fn rx_segment_inner(ps: &mut ProtoState, sum: &RxSummary) -> RxOutcome {
    let mut out = RxOutcome::default();

    // ---- ACK-side processing -------------------------------------------
    if sum.flags.ack() {
        let una = ps.snd_una();
        let snd_nxt = ps.seq;
        if sum.ack.after(una) && sum.ack.before_eq(snd_nxt) {
            let mut acked = sum.ack - una;
            // The FIN occupies the final sequence number; freeing TX-buffer
            // bytes must not count it.
            if ps.fin_sent && ps.fin_pending && sum.ack == snd_nxt {
                ps.fin_pending = false; // our FIN is acknowledged
                acked -= 1;
            }
            ps.tx_sent -= sum.ack - una;
            out.acked_bytes = acked;
            ps.dupack_cnt = 0;
            out.update_scheduler = true;
            if sum.has_ts {
                out.rtt_sample_ts = Some(sum.tsecr);
            }
        } else if sum.ack == una && sum.payload_len == 0 && !sum.flags.fin() && ps.tx_sent > 0 {
            // Duplicate ACK: peer is missing something we sent.
            ps.dupack_cnt = (ps.dupack_cnt + 1).min(0x0f);
            if ps.dupack_cnt >= 3 {
                go_back_n(ps);
                out.fast_retransmit = true;
                out.update_scheduler = true;
            }
        }
        // Window updates apply regardless of ACK advancement.
        if ps.remote_win != sum.window {
            ps.remote_win = sum.window;
            out.update_scheduler = true;
        }
    }
    if sum.has_ts {
        ps.next_ts = sum.tsval;
    }
    if sum.ecn_ce {
        out.ecn_echo = true;
    }

    // ---- Data / FIN processing -----------------------------------------
    let mut seg_seq = sum.seq;
    let mut len = sum.payload_len;
    let mut frame_off = 0u32;
    let mut fin = sum.flags.fin();
    let had_payload = len > 0;

    // Trim bytes we already have.
    if seg_seq.before(ps.ack) {
        let dup = (ps.ack - seg_seq).min(len);
        seg_seq += dup;
        len -= dup;
        frame_off += dup;
        if len == 0 && !fin {
            // Complete duplicate: re-ACK so the peer converges.
            out.dropped = true;
            out.send_ack = had_payload;
            return out;
        }
        if fin && seg_seq.before(ps.ack) {
            // FIN below rcv_nxt: already consumed.
            out.dropped = true;
            out.send_ack = true;
            return out;
        }
    }

    if len == 0 && !fin {
        // Pure ACK / window update: no receive-side work, no ACK reply
        // (replying would loop).
        return out;
    }

    // Right-trim to the receive window ("trimming the payload to fit the
    // receive window if necessary", §3.1.3).
    let win_end = ps.ack + ps.rx_avail;
    if (seg_seq + len).after(win_end) {
        let overflow = (seg_seq + len) - win_end;
        let overflow = overflow.min(len);
        len -= overflow;
        fin = false; // trimmed FIN will be retransmitted
        if len == 0 {
            out.dropped = true;
            out.send_ack = true; // tell the peer our window/ack state
            return out;
        }
    }

    if seg_seq == ps.ack {
        // ---- In-order ---------------------------------------------------
        if len > 0 {
            out.placement = Some(Placement {
                buf_pos: ps.rx_pos,
                frame_off,
                len,
            });
            ps.ack += len;
            ps.rx_pos = ps.rx_pos.wrapping_add(len);
            ps.rx_avail -= len;
            out.delivered = len;
        }
        // Merge with the out-of-order interval if we reached it.
        if ps.ooo_len > 0 && ps.ooo_start.before_eq(ps.ack) {
            let ooo_end = ps.ooo_start + ps.ooo_len;
            if ooo_end.after(ps.ack) {
                let flush = ooo_end - ps.ack;
                ps.ack += flush;
                ps.rx_pos = ps.rx_pos.wrapping_add(flush);
                ps.rx_avail -= flush;
                out.delivered += flush;
            }
            ps.ooo_len = 0;
            ps.ooo_start = SeqNum(0);
        }
        if fin && ps.ooo_len == 0 {
            ps.ack += 1;
            ps.fin_received = true;
            out.fin_delivered = true;
        }
        out.send_ack = true;
        out.update_scheduler |= out.delivered > 0;
    } else {
        // ---- Out of order ------------------------------------------------
        out.out_of_order = true;
        let seg_end = seg_seq + len;
        if ps.ooo_len == 0 {
            // Start a new interval; reassemble directly in the host buffer.
            ps.ooo_start = seg_seq;
            ps.ooo_len = len;
            out.placement = Some(Placement {
                buf_pos: ps.rx_pos.wrapping_add(seg_seq - ps.ack),
                frame_off,
                len,
            });
        } else {
            let ooo_end = ps.ooo_start + ps.ooo_len;
            // Merge only if overlapping or adjacent — a disjoint segment
            // would create a hole inside the single tracked interval.
            if seg_seq.before_eq(ooo_end) && ps.ooo_start.before_eq(seg_end) {
                let new_start = ps.ooo_start.min(seg_seq);
                let new_end = ooo_end.max(seg_end);
                ps.ooo_start = new_start;
                ps.ooo_len = new_end - new_start;
                out.placement = Some(Placement {
                    buf_pos: ps.rx_pos.wrapping_add(seg_seq - ps.ack),
                    frame_off,
                    len,
                });
            } else {
                // "Segments outside of the interval are dropped and
                // generate acknowledgments with the expected sequence
                // number to trigger retransmissions at the sender."
                out.dropped = true;
            }
        }
        // Every out-of-order arrival generates a duplicate ACK.
        out.send_ack = true;
    }
    out
}

/// Protocol-stage processing of one TX trigger ("Seq" in Figure 5):
/// allocate a sequence range and buffer position for the next segment.
/// Returns `None` when nothing can be sent (scheduler raced an ACK).
pub fn tx_next(ps: &mut ProtoState, mss: u32) -> Option<TxSeg> {
    let len = ps.sendable().min(mss);
    let fin_now = ps.fin_pending && !ps.fin_sent && len == ps.tx_avail;
    if len == 0 && !fin_now {
        return None;
    }
    let seg = TxSeg {
        seq: ps.seq,
        ack: ps.ack,
        buf_pos: ps.tx_pos,
        len,
        fin: fin_now,
        window: advertised_window(ps),
        ts_echo: ps.next_ts,
    };
    ps.seq += len;
    ps.tx_pos = ps.tx_pos.wrapping_add(len);
    ps.tx_avail -= len;
    ps.tx_sent += len;
    if fin_now {
        ps.seq += 1;
        ps.tx_sent += 1;
        ps.fin_sent = true;
    }
    Some(seg)
}

/// HC "Win" step for a transmit doorbell: the application appended `len`
/// bytes to the socket TX buffer (§3.1.1).
pub fn hc_tx_append(ps: &mut ProtoState, len: u32) {
    ps.tx_avail += len;
}

/// HC step for a receive doorbell: the application consumed `len` bytes
/// from the socket RX buffer, opening the advertised window. Returns true
/// when a window-update ACK should be pushed to the peer (the window was
/// effectively closed and has now re-opened).
pub fn hc_rx_consumed(ps: &mut ProtoState, len: u32, mss: u32) -> bool {
    let before = ps.rx_avail;
    ps.rx_avail += len;
    before < mss && ps.rx_avail >= mss
}

/// HC "Fin" step: connection close requested (§3.1.1).
pub fn hc_close(ps: &mut ProtoState) {
    ps.fin_pending = true;
}

/// HC "Reset" step: retransmission timeout fired in the control plane —
/// go-back-N (§3.1.1).
pub fn hc_retransmit(ps: &mut ProtoState) {
    go_back_n(ps);
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    fn established() -> ProtoState {
        ProtoState {
            seq: SeqNum(10_000),
            ack: SeqNum(50_000),
            rx_avail: 65_536,
            remote_win: 65_535,
            rx_pos: 0,
            tx_pos: 0,
            ..Default::default()
        }
    }

    fn data(seq: u32, len: u32) -> RxSummary {
        RxSummary {
            seq: SeqNum(seq),
            ack: SeqNum(10_000),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 65_535,
            payload_len: len,
            ..Default::default()
        }
    }

    // ---------------- RX: in-order -------------------------------------

    #[test]
    fn in_order_delivery() {
        let mut ps = established();
        let out = rx_segment(&mut ps, &data(50_000, 100));
        assert_eq!(out.delivered, 100);
        assert_eq!(
            out.placement,
            Some(Placement {
                buf_pos: 0,
                frame_off: 0,
                len: 100
            })
        );
        assert!(out.send_ack);
        assert!(!out.out_of_order);
        assert_eq!(ps.ack, SeqNum(50_100));
        assert_eq!(ps.rx_pos, 100);
        assert_eq!(ps.rx_avail, 65_436);
    }

    #[test]
    fn pure_ack_generates_no_ack() {
        let mut ps = established();
        let out = rx_segment(&mut ps, &data(50_000, 0));
        assert!(!out.send_ack);
        assert_eq!(out.delivered, 0);
        assert!(out.placement.is_none());
    }

    #[test]
    fn duplicate_data_reacked_not_delivered() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_000, 100));
        let out = rx_segment(&mut ps, &data(50_000, 100));
        assert!(out.dropped);
        assert!(out.send_ack);
        assert_eq!(out.delivered, 0);
        assert_eq!(ps.ack, SeqNum(50_100));
    }

    #[test]
    fn partial_overlap_trims_leading_bytes() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_000, 100));
        // retransmission covering [50_050, 50_250): first 50 are dupes
        let out = rx_segment(&mut ps, &data(50_050, 200));
        assert_eq!(out.delivered, 150);
        assert_eq!(
            out.placement,
            Some(Placement {
                buf_pos: 100,
                frame_off: 50,
                len: 150
            })
        );
        assert_eq!(ps.ack, SeqNum(50_250));
    }

    #[test]
    fn window_overflow_right_trimmed() {
        let mut ps = established();
        ps.rx_avail = 80;
        let out = rx_segment(&mut ps, &data(50_000, 100));
        assert_eq!(out.delivered, 80);
        assert_eq!(ps.rx_avail, 0);
        assert!(out.send_ack);
        // a further segment is fully outside the closed window
        let out = rx_segment(&mut ps, &data(50_080, 50));
        assert!(out.dropped);
        assert!(out.send_ack);
        assert_eq!(out.delivered, 0);
    }

    // ---------------- RX: out-of-order ---------------------------------

    #[test]
    fn out_of_order_starts_interval_and_places_at_offset() {
        let mut ps = established();
        let out = rx_segment(&mut ps, &data(50_200, 100));
        assert!(out.out_of_order);
        assert!(out.send_ack); // duplicate ACK
        assert_eq!(out.delivered, 0);
        assert_eq!(
            out.placement,
            Some(Placement {
                buf_pos: 200,
                frame_off: 0,
                len: 100
            })
        );
        assert_eq!(ps.ooo_start, SeqNum(50_200));
        assert_eq!(ps.ooo_len, 100);
        assert_eq!(ps.ack, SeqNum(50_000)); // unchanged
    }

    #[test]
    fn gap_fill_flushes_interval() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_100, 100)); // ooo [50100, 50200)
        let out = rx_segment(&mut ps, &data(50_000, 100)); // fills the gap
        assert_eq!(out.delivered, 200); // 100 new + 100 flushed
        assert_eq!(ps.ack, SeqNum(50_200));
        assert_eq!(ps.ooo_len, 0);
        assert_eq!(ps.rx_pos, 200);
        assert_eq!(ps.rx_avail, 65_536 - 200);
    }

    #[test]
    fn adjacent_ooo_segments_merge() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_100, 100)); // [50100,50200)
        let out = rx_segment(&mut ps, &data(50_200, 50)); // adjacent right
        assert!(out.placement.is_some());
        assert_eq!(ps.ooo_start, SeqNum(50_100));
        assert_eq!(ps.ooo_len, 150);
        let out = rx_segment(&mut ps, &data(50_050, 50)); // adjacent left
        assert!(out.placement.is_some());
        assert_eq!(ps.ooo_start, SeqNum(50_050));
        assert_eq!(ps.ooo_len, 200);
    }

    #[test]
    fn disjoint_ooo_segment_dropped() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_100, 100)); // [50100,50200)
        let out = rx_segment(&mut ps, &data(50_400, 100)); // hole at 50200
        assert!(out.dropped);
        assert!(out.send_ack); // still duplicate-ACKs
        assert_eq!(ps.ooo_len, 100); // interval unchanged
    }

    #[test]
    fn overlapping_ooo_merges_without_double_count() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_100, 100)); // [50100,50200)
        rx_segment(&mut ps, &data(50_150, 100)); // [50150,50250) overlaps
        assert_eq!(ps.ooo_start, SeqNum(50_100));
        assert_eq!(ps.ooo_len, 150);
        // fill the gap: delivered = 100 in-order + 150 interval
        let out = rx_segment(&mut ps, &data(50_000, 100));
        assert_eq!(out.delivered, 250);
        assert_eq!(ps.ack, SeqNum(50_250));
    }

    #[test]
    fn in_order_overlapping_interval_does_not_redeliver() {
        let mut ps = established();
        rx_segment(&mut ps, &data(50_100, 100)); // ooo [50100,50200)
                                                 // retransmission covers [50000, 50150): overlaps interval head
        let out = rx_segment(&mut ps, &data(50_000, 150));
        // delivered = 150 new in-order + 50 remaining interval flush
        assert_eq!(out.delivered, 200);
        assert_eq!(ps.ack, SeqNum(50_200));
        assert_eq!(ps.ooo_len, 0);
    }

    // ---------------- ACK / retransmit side -----------------------------

    fn with_inflight(tx_sent: u32) -> ProtoState {
        let mut ps = established();
        ps.tx_avail = 0;
        ps.tx_sent = tx_sent;
        // seq stays 10_000 => snd_una = 10_000 - tx_sent
        ps
    }

    fn ack_only(ackno: u32) -> RxSummary {
        RxSummary {
            seq: SeqNum(50_000),
            ack: SeqNum(ackno),
            flags: TcpFlags::ACK,
            window: 65_535,
            payload_len: 0,
            ..Default::default()
        }
    }

    #[test]
    fn ack_frees_tx_bytes() {
        let mut ps = with_inflight(1000);
        let out = rx_segment(&mut ps, &ack_only(9_500)); // half acked
        assert_eq!(out.acked_bytes, 500);
        assert_eq!(ps.tx_sent, 500);
        assert!(out.update_scheduler);
        // old (already-seen) ACK is ignored
        let out = rx_segment(&mut ps, &ack_only(9_400));
        assert_eq!(out.acked_bytes, 0);
        // future ACK beyond snd_nxt is ignored too
        let out = rx_segment(&mut ps, &ack_only(11_000));
        assert_eq!(out.acked_bytes, 0);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut ps = with_inflight(1000);
        ps.tx_pos = 5000; // pretend buffer position advanced with the send
        let una = 9_000;
        assert!(!rx_segment(&mut ps, &ack_only(una)).fast_retransmit);
        assert!(!rx_segment(&mut ps, &ack_only(una)).fast_retransmit);
        let out = rx_segment(&mut ps, &ack_only(una));
        assert!(out.fast_retransmit);
        // go-back-N: snd_nxt reset to snd_una, bytes back in tx_avail
        assert_eq!(ps.seq, SeqNum(9_000));
        assert_eq!(ps.tx_sent, 0);
        assert_eq!(ps.tx_avail, 1000);
        assert_eq!(ps.tx_pos, 4000);
        assert_eq!(ps.dupack_cnt, 0);
    }

    #[test]
    fn advancing_ack_resets_dupack_count() {
        let mut ps = with_inflight(1000);
        rx_segment(&mut ps, &ack_only(9_000));
        rx_segment(&mut ps, &ack_only(9_000));
        assert_eq!(ps.dupack_cnt, 2);
        rx_segment(&mut ps, &ack_only(9_500));
        assert_eq!(ps.dupack_cnt, 0);
    }

    #[test]
    fn dupack_requires_inflight_data() {
        let mut ps = established(); // tx_sent == 0
        for _ in 0..5 {
            let out = rx_segment(&mut ps, &ack_only(10_000));
            assert!(!out.fast_retransmit);
        }
        assert_eq!(ps.dupack_cnt, 0);
    }

    #[test]
    fn window_update_signals_scheduler() {
        let mut ps = with_inflight(100);
        let mut sum = ack_only(9_900); // snd_una
        sum.window = 123;
        // ack == una with payload 0 counts as dupack but window changed
        let out = rx_segment(&mut ps, &sum);
        assert_eq!(ps.remote_win, 123);
        assert!(out.update_scheduler);
    }

    #[test]
    fn rto_retransmit_resets_state() {
        let mut ps = with_inflight(2000);
        ps.tx_pos = 2000;
        hc_retransmit(&mut ps);
        assert_eq!(ps.seq, SeqNum(8_000));
        assert_eq!(ps.tx_avail, 2000);
        assert_eq!(ps.tx_pos, 0);
        // idempotent when nothing is in flight
        hc_retransmit(&mut ps);
        assert_eq!(ps.seq, SeqNum(8_000));
    }

    // ---------------- TX ------------------------------------------------

    #[test]
    fn tx_respects_mss_and_windows() {
        let mut ps = established();
        ps.tx_avail = 4000;
        let seg = tx_next(&mut ps, MSS).unwrap();
        assert_eq!(seg.len, MSS);
        assert_eq!(seg.seq, SeqNum(10_000));
        assert_eq!(seg.buf_pos, 0);
        assert!(!seg.fin);
        assert_eq!(ps.seq, SeqNum(10_000 + MSS));
        assert_eq!(ps.tx_sent, MSS);
        assert_eq!(ps.tx_avail, 4000 - MSS);

        // remote window limits the next segment
        ps.remote_win = (MSS + 100) as u16; // 100 left after in-flight MSS
        let seg = tx_next(&mut ps, MSS).unwrap();
        assert_eq!(seg.len, 100);

        // window exhausted -> nothing sendable
        assert!(tx_next(&mut ps, MSS).is_none());
    }

    #[test]
    fn tx_sequence_of_segments_is_contiguous() {
        let mut ps = established();
        ps.tx_avail = 3 * MSS + 10;
        let mut expect = 10_000;
        for want in [MSS, MSS, MSS, 10] {
            let seg = tx_next(&mut ps, MSS).unwrap();
            assert_eq!(seg.seq, SeqNum(expect));
            assert_eq!(seg.len, want);
            expect += want;
        }
        assert!(tx_next(&mut ps, MSS).is_none());
    }

    #[test]
    fn fin_sent_after_data_drains() {
        let mut ps = established();
        ps.tx_avail = 100;
        hc_close(&mut ps);
        let seg = tx_next(&mut ps, MSS).unwrap();
        assert_eq!(seg.len, 100);
        assert!(seg.fin, "FIN rides the last data segment");
        assert!(ps.fin_sent);
        assert_eq!(ps.seq, SeqNum(10_101)); // 100 data + 1 FIN
        assert_eq!(ps.tx_sent, 101);
        assert!(tx_next(&mut ps, MSS).is_none());
    }

    #[test]
    fn bare_fin_when_no_data() {
        let mut ps = established();
        hc_close(&mut ps);
        let seg = tx_next(&mut ps, MSS).unwrap();
        assert_eq!(seg.len, 0);
        assert!(seg.fin);
        assert_eq!(ps.tx_sent, 1);
    }

    #[test]
    fn ack_of_fin_does_not_free_buffer_byte() {
        let mut ps = established();
        ps.tx_avail = 100;
        hc_close(&mut ps);
        tx_next(&mut ps, MSS);
        let out = rx_segment(&mut ps, &ack_only(10_101));
        assert_eq!(out.acked_bytes, 100); // not 101
        assert_eq!(ps.tx_sent, 0);
        assert!(!ps.fin_pending, "FIN acknowledged");
    }

    #[test]
    fn lost_fin_retransmitted_after_reset() {
        let mut ps = established();
        ps.tx_avail = 50;
        hc_close(&mut ps);
        tx_next(&mut ps, MSS);
        assert!(ps.fin_sent);
        hc_retransmit(&mut ps); // RTO: FIN + data lost
        assert!(!ps.fin_sent);
        assert_eq!(ps.tx_avail, 50);
        let seg = tx_next(&mut ps, MSS).unwrap();
        assert_eq!(seg.len, 50);
        assert!(seg.fin);
    }

    // ---------------- FIN receive ----------------------------------------

    #[test]
    fn fin_with_data_delivered_in_order() {
        let mut ps = established();
        let mut sum = data(50_000, 10);
        sum.flags = TcpFlags::ACK | TcpFlags::FIN | TcpFlags::PSH;
        let out = rx_segment(&mut ps, &sum);
        assert_eq!(out.delivered, 10);
        assert!(out.fin_delivered);
        assert!(ps.fin_received);
        assert_eq!(ps.ack, SeqNum(50_011)); // 10 data + 1 FIN
        assert!(out.send_ack);
    }

    #[test]
    fn ooo_fin_not_consumed_until_gap_fills() {
        let mut ps = established();
        let mut sum = data(50_100, 10);
        sum.flags = TcpFlags::ACK | TcpFlags::FIN;
        let out = rx_segment(&mut ps, &sum);
        assert!(!out.fin_delivered);
        assert!(!ps.fin_received);
        // gap fill delivers the buffered bytes but not the dropped FIN —
        // the peer retransmits its FIN.
        let out = rx_segment(&mut ps, &data(50_000, 100));
        assert_eq!(out.delivered, 110);
        assert!(!out.fin_delivered);
        let mut refin = data(50_110, 0);
        refin.flags = TcpFlags::ACK | TcpFlags::FIN;
        let out = rx_segment(&mut ps, &refin);
        assert!(out.fin_delivered);
        assert_eq!(ps.ack, SeqNum(50_111));
    }

    // ---------------- HC -------------------------------------------------

    #[test]
    fn hc_append_and_consume() {
        let mut ps = established();
        hc_tx_append(&mut ps, 5000);
        assert_eq!(ps.tx_avail, 5000);
        ps.rx_avail = 0;
        assert!(!hc_rx_consumed(&mut ps, 100, MSS)); // still < MSS
        assert!(hc_rx_consumed(&mut ps, 2000, MSS)); // crossed: window update
        assert!(!hc_rx_consumed(&mut ps, 2000, MSS)); // already open
    }

    // ---------------- ECN / timestamps ------------------------------------

    #[test]
    fn ce_mark_echoes_ecn() {
        let mut ps = established();
        let mut sum = data(50_000, 100);
        sum.ecn_ce = true;
        let out = rx_segment(&mut ps, &sum);
        assert!(out.ecn_echo);
        assert!(out.send_ack);
    }

    #[test]
    fn timestamp_echo_bookkeeping() {
        let mut ps = with_inflight(100);
        let mut sum = ack_only(9_950);
        sum.has_ts = true;
        sum.tsval = 777;
        sum.tsecr = 555;
        let out = rx_segment(&mut ps, &sum);
        assert_eq!(ps.next_ts, 777);
        assert_eq!(out.rtt_sample_ts, Some(555));
    }

    // ---------------- Sequence wraparound ---------------------------------

    #[test]
    fn everything_works_across_seq_wrap() {
        let mut ps = ProtoState {
            seq: SeqNum(u32::MAX - 100),
            ack: SeqNum(u32::MAX - 50),
            rx_avail: 65_536,
            remote_win: 65_535,
            ..Default::default()
        };
        ps.tx_avail = 400;
        let seg = tx_next(&mut ps, 300).unwrap();
        assert_eq!(seg.seq, SeqNum(u32::MAX - 100));
        assert_eq!(ps.seq, SeqNum(199)); // wrapped
                                         // in-order data across the wrap
        let sum = RxSummary {
            seq: SeqNum(u32::MAX - 50),
            ack: SeqNum(150), // acks 251 of our 300
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 65_535,
            payload_len: 100,
            ..Default::default()
        };
        let out = rx_segment(&mut ps, &sum);
        assert_eq!(out.delivered, 100);
        assert_eq!(ps.ack, SeqNum(49)); // wrapped
                                        // snd_una was 2^32-101; distance to 150 is 251
        assert_eq!(out.acked_bytes, 251);
        assert_eq!(ps.tx_sent, 49);
    }

    #[test]
    fn advertised_window_clamps() {
        let mut ps = established();
        ps.rx_avail = 100_000;
        assert_eq!(advertised_window(&ps), u16::MAX);
        ps.rx_avail = 100;
        assert_eq!(advertised_window(&ps), 100);
    }
}
