//! Work items flowing through the data-path pipeline, and the connection
//! table shared by its stages.

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_sim::Time;
use flextoe_wire::{FourTuple, Ip4, MacAddr, SegmentView};

use crate::hostmem::{AppToNic, SharedBuf, SharedCtxQueue};
use crate::proto::{RxOutcome, RxSummary, TxSeg};
use crate::state::{PostState, PreState, ProtoState};

/// NIC-level identity (shared by all connections of this NIC).
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    pub mac: MacAddr,
    pub ip: Ip4,
}

/// Everything the data-path knows about one established connection.
/// The control plane installs an entry at connection setup (§D) and the
/// stage nodes access their own partitions of it.
pub struct ConnEntry {
    pub pre: PreState,
    pub proto: ProtoState,
    pub post: PostState,
    /// 4-tuple as it appears on *incoming* segments (src = peer).
    pub tuple_rx: FourTuple,
    pub tx_buf: SharedBuf,
    pub rx_buf: SharedBuf,
    pub ctxq: SharedCtxQueue,
    pub active: bool,
}

/// The connection table in NIC memory. Index = connection id, allocated by
/// the control plane "in such a way that we minimize collisions on the
/// direct-mapped CLS cache" (§4.1) — i.e. densely.
pub struct ConnTable {
    pub nic: NicConfig,
    conns: Vec<Option<ConnEntry>>,
}

impl ConnTable {
    pub fn new(nic: NicConfig) -> ConnTable {
        ConnTable {
            nic,
            conns: Vec::new(),
        }
    }

    pub fn install(&mut self, entry: ConnEntry) -> u32 {
        // reuse the lowest free index to keep ids dense
        for (i, slot) in self.conns.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i as u32;
            }
        }
        self.conns.push(Some(entry));
        (self.conns.len() - 1) as u32
    }

    pub fn remove(&mut self, conn: u32) -> Option<ConnEntry> {
        self.conns.get_mut(conn as usize)?.take()
    }

    pub fn get(&self, conn: u32) -> Option<&ConnEntry> {
        self.conns.get(conn as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, conn: u32) -> Option<&mut ConnEntry> {
        self.conns.get_mut(conn as usize)?.as_mut()
    }

    pub fn len(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, &ConnEntry)> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|e| (i as u32, e)))
    }
}

pub type SharedConnTable = Rc<RefCell<ConnTable>>;

pub fn shared_conn_table(nic: NicConfig) -> SharedConnTable {
    Rc::new(RefCell::new(ConnTable::new(nic)))
}

/// A receive-workflow item (Figure 6).
pub struct RxWork {
    pub frame: Vec<u8>,
    /// Filled by pre-processing (Val/Id/Sum).
    pub view: Option<SegmentView>,
    pub summary: RxSummary,
    pub conn: u32,
    pub group: usize,
    /// Filled by the protocol stage (Win).
    pub outcome: Option<RxOutcome>,
    /// Filled by post-processing (Ack/ECN/Stamp).
    pub ack_frame: Option<Vec<u8>>,
    /// Assigned by the protocol stage when an ACK will be emitted.
    pub nbi_seq: Option<u64>,
    pub arrival: Time,
}

/// A transmit-workflow item (Figure 5).
pub struct TxWork {
    pub conn: u32,
    pub group: usize,
    /// Filled by the protocol stage (Seq): sequence range + buffer pos.
    pub seg: Option<TxSeg>,
    /// Prepared by pre-processing (Alloc/Head): Ethernet/IP identity of
    /// the segment. The DMA stage emits the final frame once the payload
    /// has been fetched from host memory.
    pub spec: Option<flextoe_wire::SegmentSpec>,
    /// Authoritative sendable-byte count after the protocol stage ran
    /// (flow-scheduler resync).
    pub sendable_after: Option<u32>,
    pub nbi_seq: Option<u64>,
    pub arrival: Time,
}

/// A host-control item (Figure 4).
pub struct HcWork {
    pub desc: AppToNic,
    pub conn: u32,
    pub group: usize,
    /// Authoritative sendable-byte count after the protocol stage (the
    /// post-processor's FS step, Figure 4).
    pub sendable_after: Option<u32>,
    /// A window-update ACK should be pushed (receive window re-opened).
    pub window_update: bool,
    /// Snapshot for that window-update ACK (zero-length TxSeg) and its
    /// NBI ordering slot, filled by the protocol stage.
    pub win_ack: Option<TxSeg>,
    pub nbi_seq: Option<u64>,
    pub arrival: Time,
}

/// One unit travelling the pipeline with its sequencing tag (§3.2).
pub enum Work {
    Rx(RxWork),
    Tx(TxWork),
    Hc(HcWork),
}

impl Work {
    pub fn kind(&self) -> &'static str {
        match self {
            Work::Rx(_) => "rx",
            Work::Tx(_) => "tx",
            Work::Hc(_) => "hc",
        }
    }
    pub fn group(&self) -> usize {
        match self {
            Work::Rx(w) => w.group,
            Work::Tx(w) => w.group,
            Work::Hc(w) => w.group,
        }
    }
}

/// The message exchanged between pipeline stages: a work item plus the
/// pipeline sequence number assigned at entry (§3.2).
pub struct PipelineMsg {
    pub entry_seq: u64,
    pub work: Work,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostmem::{shared_buf, shared_ctxq};

    fn entry() -> ConnEntry {
        ConnEntry {
            pre: PreState::default(),
            proto: ProtoState::default(),
            post: PostState::default(),
            tuple_rx: FourTuple::new(Ip4::host(2), 1000, Ip4::host(1), 80),
            tx_buf: shared_buf(1024),
            rx_buf: shared_buf(1024),
            ctxq: shared_ctxq(64),
            active: true,
        }
    }

    #[test]
    fn install_reuses_lowest_free_slot() {
        let mut t = ConnTable::new(NicConfig {
            mac: MacAddr::local(1),
            ip: Ip4::host(1),
        });
        let a = t.install(entry());
        let b = t.install(entry());
        let c = t.install(entry());
        assert_eq!((a, b, c), (0, 1, 2));
        t.remove(b);
        assert_eq!(t.len(), 2);
        let d = t.install(entry());
        assert_eq!(d, 1, "freed slot reused to keep ids dense");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn get_and_iter() {
        let mut t = ConnTable::new(NicConfig {
            mac: MacAddr::local(1),
            ip: Ip4::host(1),
        });
        let a = t.install(entry());
        assert!(t.get(a).is_some());
        assert!(t.get(99).is_none());
        t.get_mut(a).unwrap().proto.tx_avail = 7;
        assert_eq!(t.get(a).unwrap().proto.tx_avail, 7);
        assert_eq!(t.iter().count(), 1);
    }
}
