//! Work items flowing through the data-path pipeline, the slab pool that
//! recycles them, and the connection table shared by the stages.
//!
//! Work items never travel inside messages: they live in the NIC-shared
//! [`WorkPool`] and stages pass [`flextoe_sim::WorkToken`]s (slot indices)
//! through the event queue — the zero-allocation fast path. Per-packet
//! byte buffers are recycled through the NIC's
//! [`flextoe_nfp::PktBufPool`].

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_nfp::PktBufPool;
use flextoe_sim::Time;
use flextoe_wire::{FourTuple, Frame, FrameMeta, Ip4, MacAddr, SegmentView};

use crate::hostmem::{AppToNic, SharedBuf, SharedCtxQueue};
use crate::proto::{RxOutcome, RxSummary, TxSeg};
use crate::state::{PostState, PreState, ProtoState};

/// NIC-level identity (shared by all connections of this NIC).
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    pub mac: MacAddr,
    pub ip: Ip4,
}

/// Everything the data-path knows about one established connection.
/// The control plane installs an entry at connection setup (§D) and the
/// stage nodes access their own partitions of it.
pub struct ConnEntry {
    pub pre: PreState,
    pub proto: ProtoState,
    pub post: PostState,
    /// 4-tuple as it appears on *incoming* segments (src = peer).
    pub tuple_rx: FourTuple,
    pub tx_buf: SharedBuf,
    pub rx_buf: SharedBuf,
    pub ctxq: SharedCtxQueue,
    pub active: bool,
}

/// The connection table in NIC memory. Index = connection id, allocated by
/// the control plane "in such a way that we minimize collisions on the
/// direct-mapped CLS cache" (§4.1) — i.e. densely.
pub struct ConnTable {
    pub nic: NicConfig,
    conns: Vec<Option<ConnEntry>>,
}

impl ConnTable {
    pub fn new(nic: NicConfig) -> ConnTable {
        ConnTable {
            nic,
            conns: Vec::new(),
        }
    }

    pub fn install(&mut self, entry: ConnEntry) -> u32 {
        // reuse the lowest free index to keep ids dense
        for (i, slot) in self.conns.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i as u32;
            }
        }
        self.conns.push(Some(entry));
        (self.conns.len() - 1) as u32
    }

    pub fn remove(&mut self, conn: u32) -> Option<ConnEntry> {
        self.conns.get_mut(conn as usize)?.take()
    }

    pub fn get(&self, conn: u32) -> Option<&ConnEntry> {
        self.conns.get(conn as usize)?.as_ref()
    }

    pub fn get_mut(&mut self, conn: u32) -> Option<&mut ConnEntry> {
        self.conns.get_mut(conn as usize)?.as_mut()
    }

    pub fn len(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, &ConnEntry)> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|e| (i as u32, e)))
    }
}

pub type SharedConnTable = Rc<RefCell<ConnTable>>;

pub fn shared_conn_table(nic: NicConfig) -> SharedConnTable {
    Rc::new(RefCell::new(ConnTable::new(nic)))
}

/// A receive-workflow item (Figure 6).
pub struct RxWork {
    pub frame: Vec<u8>,
    /// Parse-once metadata that arrived with the frame (None for frames
    /// whose bytes were mutated en route — corruption, XDP rewrites).
    /// When present, the pre-processor's Val step trusts the emitter's
    /// checksums instead of re-verifying.
    pub meta: Option<FrameMeta>,
    /// Filled by pre-processing (Val/Id/Sum).
    pub view: Option<SegmentView>,
    pub summary: RxSummary,
    pub conn: u32,
    pub group: usize,
    /// Filled by the protocol stage (Win).
    pub outcome: Option<RxOutcome>,
    /// Filled by post-processing (Ack/ECN/Stamp): a tagged, pooled frame.
    pub ack_frame: Option<Frame>,
    /// Assigned by the protocol stage when an ACK will be emitted.
    pub nbi_seq: Option<u64>,
    /// Filled by post-processing: context queue + notifications released
    /// after payload DMA completes (§3.1.3 ordering constraint).
    pub notify_ctx: u16,
    pub notify_rx: Option<crate::hostmem::NicToApp>,
    pub notify_tx: Option<crate::hostmem::NicToApp>,
    pub arrival: Time,
}

/// A transmit-workflow item (Figure 5).
pub struct TxWork {
    pub conn: u32,
    pub group: usize,
    /// Filled by the protocol stage (Seq): sequence range + buffer pos.
    pub seg: Option<TxSeg>,
    /// Prepared by pre-processing (Alloc/Head): Ethernet/IP identity of
    /// the segment. The DMA stage emits the final frame once the payload
    /// has been fetched from host memory.
    pub spec: Option<flextoe_wire::SegmentSpec>,
    /// Authoritative sendable-byte count after the protocol stage ran
    /// (flow-scheduler resync).
    pub sendable_after: Option<u32>,
    pub nbi_seq: Option<u64>,
    pub arrival: Time,
}

/// A host-control item (Figure 4).
pub struct HcWork {
    pub desc: AppToNic,
    pub conn: u32,
    pub group: usize,
    /// Authoritative sendable-byte count after the protocol stage (the
    /// post-processor's FS step, Figure 4).
    pub sendable_after: Option<u32>,
    /// A window-update ACK should be pushed (receive window re-opened).
    pub window_update: bool,
    /// Snapshot for that window-update ACK (zero-length TxSeg) and its
    /// NBI ordering slot, filled by the protocol stage.
    pub win_ack: Option<TxSeg>,
    /// The emitted window-update ACK frame (post-processing).
    pub ack_frame: Option<Frame>,
    pub nbi_seq: Option<u64>,
    pub arrival: Time,
}

/// One unit travelling the pipeline with its sequencing tag (§3.2).
pub enum Work {
    Rx(RxWork),
    Tx(TxWork),
    Hc(HcWork),
}

impl Work {
    pub fn kind(&self) -> &'static str {
        match self {
            Work::Rx(_) => "rx",
            Work::Tx(_) => "tx",
            Work::Hc(_) => "hc",
        }
    }
    pub fn group(&self) -> usize {
        match self {
            Work::Rx(w) => w.group,
            Work::Tx(w) => w.group,
            Work::Hc(w) => w.group,
        }
    }

    /// One-line debug description (pool leak reports).
    pub fn describe(&self) -> String {
        match self {
            Work::Rx(w) => format!("rx conn={} arrival={}ns", w.conn, w.arrival.as_ns()),
            Work::Tx(w) => format!(
                "tx conn={} arrival={}ns seg={} nbi={:?}",
                w.conn,
                w.arrival.as_ns(),
                w.seg.is_some(),
                w.nbi_seq
            ),
            Work::Hc(w) => format!("hc conn={} arrival={}ns", w.conn, w.arrival.as_ns()),
        }
    }
}

// ---- pools ---------------------------------------------------------------

// Free/CheckedOut carry no data on purpose: the slab IS the storage, so
// the size difference against `InFlight(Work)` is the point, not waste.
#[allow(clippy::large_enum_variant)]
enum Slot {
    Free,
    /// Owned by an in-flight [`flextoe_sim::WorkToken`].
    InFlight(Work),
    /// Temporarily taken out by the stage processing it.
    CheckedOut,
}

/// Slab of in-flight pipeline work items. Stages pass slot indices
/// (`WorkToken`s) through the event queue; the item itself stays here —
/// allocated once, recycled via a free list. The slot state machine
/// (`Free → InFlight → CheckedOut → Free`) turns leaks and double-frees
/// into panics, which the integration suite asserts on.
pub struct WorkPool {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Optional bound on live slots — the finite work-item memory of the
    /// NIC. `alloc` stays infallible; admission points (the sequencer's
    /// RX ingress) consult [`WorkPool::at_capacity`] and shed load with a
    /// counted drop instead of growing the slab past the cap.
    pub capacity: Option<usize>,
    pub allocated: u64,
    pub released: u64,
    pub high_water: usize,
}

impl WorkPool {
    pub fn new() -> WorkPool {
        WorkPool {
            slots: Vec::new(),
            free: Vec::new(),
            capacity: None,
            allocated: 0,
            released: 0,
            high_water: 0,
        }
    }

    /// True when a capped pool has no free slot left: another `alloc`
    /// would exceed the configured bound. Uncapped pools never are.
    pub fn at_capacity(&self) -> bool {
        self.capacity.is_some_and(|c| self.in_use() >= c)
    }

    /// Place a work item, returning its slot.
    pub fn alloc(&mut self, work: Work) -> u32 {
        self.allocated += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Slot::InFlight(work);
                slot
            }
            None => {
                self.slots.push(Slot::InFlight(work));
                (self.slots.len() - 1) as u32
            }
        };
        self.high_water = self.high_water.max(self.in_use());
        slot
    }

    /// Check the item out for processing (the slot stays reserved).
    pub fn take(&mut self, slot: u32) -> Work {
        match std::mem::replace(&mut self.slots[slot as usize], Slot::CheckedOut) {
            Slot::InFlight(work) => work,
            Slot::Free => panic!("work pool: take on free slot {slot}"),
            Slot::CheckedOut => panic!("work pool: take on checked-out slot {slot}"),
        }
    }

    /// Put a checked-out item back (it stays in flight under the same
    /// token).
    pub fn restore(&mut self, slot: u32, work: Work) {
        match &self.slots[slot as usize] {
            Slot::CheckedOut => self.slots[slot as usize] = Slot::InFlight(work),
            _ => panic!("work pool: restore on slot {slot} that is not checked out"),
        }
    }

    /// Retire a checked-out slot to the free list.
    pub fn release(&mut self, slot: u32) {
        match &self.slots[slot as usize] {
            Slot::CheckedOut => {
                self.slots[slot as usize] = Slot::Free;
                self.free.push(slot);
                self.released += 1;
            }
            Slot::Free => panic!("work pool: double free of slot {slot}"),
            Slot::InFlight(_) => panic!("work pool: release of in-flight slot {slot}"),
        }
    }

    /// Read-only peek at an in-flight item.
    /// In-place access to an in-flight item: stages mutate the work item
    /// where it lives instead of paying a 300-byte move out and back per
    /// hop ([`Work`] is the pool's largest resident). The slot stays
    /// `InFlight` throughout — use [`WorkPool::retire`] when the item
    /// dies in the stage.
    pub fn get_mut(&mut self, slot: u32) -> &mut Work {
        match &mut self.slots[slot as usize] {
            Slot::InFlight(work) => work,
            Slot::Free => panic!("work pool: get_mut on free slot {slot}"),
            Slot::CheckedOut => panic!("work pool: get_mut on checked-out slot {slot}"),
        }
    }

    /// [`WorkPool::get_mut`] narrowed to an RX item (wiring bug otherwise).
    pub fn rx_mut(&mut self, slot: u32) -> &mut RxWork {
        match self.get_mut(slot) {
            Work::Rx(w) => w,
            _ => panic!("slot {slot} does not hold RX work"),
        }
    }

    /// [`WorkPool::get_mut`] narrowed to a TX item.
    pub fn tx_mut(&mut self, slot: u32) -> &mut TxWork {
        match self.get_mut(slot) {
            Work::Tx(w) => w,
            _ => panic!("slot {slot} does not hold TX work"),
        }
    }

    /// [`WorkPool::get_mut`] narrowed to an HC item.
    pub fn hc_mut(&mut self, slot: u32) -> &mut HcWork {
        match self.get_mut(slot) {
            Work::Hc(w) => w,
            _ => panic!("slot {slot} does not hold HC work"),
        }
    }

    /// Free an in-flight slot, returning the item for buffer recycling —
    /// `take` + `release` in one step for the in-place processing flow.
    pub fn retire(&mut self, slot: u32) -> Work {
        match std::mem::replace(&mut self.slots[slot as usize], Slot::Free) {
            Slot::InFlight(work) => {
                self.free.push(slot);
                self.released += 1;
                work
            }
            Slot::Free => panic!("work pool: double free of slot {slot}"),
            Slot::CheckedOut => panic!("work pool: retire of checked-out slot {slot}"),
        }
    }

    pub fn get(&self, slot: u32) -> &Work {
        match &self.slots[slot as usize] {
            Slot::InFlight(work) => work,
            _ => panic!("work pool: get on vacant slot {slot}"),
        }
    }

    /// Slots currently holding (or checked out for) live work.
    pub fn in_use(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Diagnostic: the live slots and their work kinds (leak reports).
    pub fn live_slots(&self) -> Vec<String> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Free => None,
                Slot::InFlight(w) => Some(format!("slot {i}: in-flight {}", w.describe())),
                Slot::CheckedOut => Some(format!("slot {i}: checked out")),
            })
            .collect()
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        Self::new()
    }
}

pub type SharedWorkPool = Rc<RefCell<WorkPool>>;
/// The NIC's packet-buffer pool (frame byte buffers, recycled).
pub type SharedSegPool = Rc<RefCell<PktBufPool>>;

pub fn shared_work_pool() -> SharedWorkPool {
    Rc::new(RefCell::new(WorkPool::new()))
}

/// Default packet-buffer pool bound: enough idle buffers for every
/// in-flight segment of a 40 Gbps pipeline with margin.
pub fn shared_seg_pool() -> SharedSegPool {
    Rc::new(RefCell::new(PktBufPool::new(4096)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostmem::{shared_buf, shared_ctxq};

    fn entry() -> ConnEntry {
        ConnEntry {
            pre: PreState::default(),
            proto: ProtoState::default(),
            post: PostState::default(),
            tuple_rx: FourTuple::new(Ip4::host(2), 1000, Ip4::host(1), 80),
            tx_buf: shared_buf(1024),
            rx_buf: shared_buf(1024),
            ctxq: shared_ctxq(64),
            active: true,
        }
    }

    #[test]
    fn install_reuses_lowest_free_slot() {
        let mut t = ConnTable::new(NicConfig {
            mac: MacAddr::local(1),
            ip: Ip4::host(1),
        });
        let a = t.install(entry());
        let b = t.install(entry());
        let c = t.install(entry());
        assert_eq!((a, b, c), (0, 1, 2));
        t.remove(b);
        assert_eq!(t.len(), 2);
        let d = t.install(entry());
        assert_eq!(d, 1, "freed slot reused to keep ids dense");
        assert_eq!(t.len(), 3);
    }

    fn hc(conn: u32) -> Work {
        Work::Hc(HcWork {
            desc: crate::hostmem::AppToNic::Close { conn },
            conn,
            group: 0,
            sendable_after: None,
            window_update: false,
            win_ack: None,
            ack_frame: None,
            nbi_seq: None,
            arrival: Time::ZERO,
        })
    }

    #[test]
    fn work_pool_recycles_slots() {
        let mut pool = WorkPool::new();
        let a = pool.alloc(hc(1));
        let b = pool.alloc(hc(2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.in_use(), 2);
        let w = pool.take(a);
        assert!(matches!(w, Work::Hc(ref h) if h.conn == 1));
        pool.restore(a, w);
        let _ = pool.take(a);
        pool.release(a);
        assert_eq!(pool.in_use(), 1);
        // freed slot is reused
        let c = pool.alloc(hc(3));
        assert_eq!(c, a);
        assert_eq!(pool.high_water, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn work_pool_catches_double_free() {
        let mut pool = WorkPool::new();
        let a = pool.alloc(hc(1));
        let _ = pool.take(a);
        pool.release(a);
        pool.release(a);
    }

    #[test]
    #[should_panic(expected = "take on free slot")]
    fn work_pool_catches_use_after_free() {
        let mut pool = WorkPool::new();
        let a = pool.alloc(hc(1));
        let _ = pool.take(a);
        pool.release(a);
        let _ = pool.take(a);
    }

    #[test]
    fn get_and_iter() {
        let mut t = ConnTable::new(NicConfig {
            mac: MacAddr::local(1),
            ip: Ip4::host(1),
        });
        let a = t.install(entry());
        assert!(t.get(a).is_some());
        assert!(t.get(99).is_none());
        t.get_mut(a).unwrap().proto.tx_avail = 7;
        assert_eq!(t.get(a).unwrap().proto.tx_avail, 7);
        assert_eq!(t.iter().count(), 1);
    }
}
