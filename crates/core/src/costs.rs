//! Per-stage cycle budgets — the calibration layer between the real TCP
//! logic and the simulated hardware (DESIGN.md §4.2).
//!
//! Compute budgets are instruction-execution cycles on the stage's FPC;
//! memory budgets are overlappable wait cycles charged *in addition to*
//! the modeled cache-hierarchy and lookup-engine costs.
//!
//! Anchors from the paper:
//! * Table 2 "Baseline 11.35 MOps": a data-path echo op traverses
//!   RX-request + HC-doorbell + TX-response + RX-ack through one
//!   flow-group's protocol FPC, so the protocol budgets below put one
//!   island at ≈ 2.9 M ops/s and four islands at ≈ 11.5 M ops/s.
//! * §2.3: the DCTCP gradient costs 1,500 cycles on an FPC — far above
//!   any per-segment budget here, which is why congestion control lives
//!   in the control plane.
//! * Table 6: TAS's *host* per-packet costs (used by `flextoe-hoststack`,
//!   not here).

use flextoe_nfp::Cost;

/// Pre-processing, RX direction: Val + Id + Sum + Steer (Fig. 6).
/// (The connection-lookup cost is modeled separately by `LookupCache`.)
pub const PRE_RX: Cost = Cost {
    compute: 70,
    mem: 40,
};

/// Pre-processing, TX direction: Alloc + Head + Steer (Fig. 5). Segment
/// buffers are allocated in island CTM.
pub const PRE_TX: Cost = Cost {
    compute: 60,
    mem: 80,
};

/// Pre-processing, HC direction: Steer only (Fig. 4).
pub const PRE_HC: Cost = Cost {
    compute: 20,
    mem: 10,
};

/// Protocol stage, RX: Win — window/reassembly/dup-ACK bookkeeping.
/// (Connection-state fetch cost is modeled by `ConnStateCache`.)
pub const PROTO_RX: Cost = Cost {
    compute: 110,
    mem: 30,
};

/// Protocol stage, RX of a pure ACK (no payload placement math).
pub const PROTO_RX_ACK: Cost = Cost {
    compute: 60,
    mem: 20,
};

/// Protocol stage, TX: Seq — sequence/position assignment.
pub const PROTO_TX: Cost = Cost {
    compute: 70,
    mem: 20,
};

/// Protocol stage, HC: Win / Fin / Reset.
pub const PROTO_HC: Cost = Cost {
    compute: 45,
    mem: 15,
};

/// Post-processing, RX: Ack + ECN + Stamp + Stats + Pos (Fig. 6).
pub const POST_RX: Cost = Cost {
    compute: 110,
    mem: 50,
};

/// Post-processing, TX: Pos (Fig. 5).
pub const POST_TX: Cost = Cost {
    compute: 40,
    mem: 20,
};

/// Post-processing, HC: FS + Free (Fig. 4).
pub const POST_HC: Cost = Cost {
    compute: 30,
    mem: 15,
};

/// DMA stage descriptor handling (enqueue to the PCIe block); the
/// transfer itself is timed by `flextoe_nfp::DmaEngine`.
pub const DMA_STAGE: Cost = Cost {
    compute: 35,
    mem: 25,
};

/// Context-queue stage: descriptor alloc / notify / free.
pub const CTXQ_STAGE: Cost = Cost {
    compute: 60,
    mem: 30,
};

/// Sequencer / reorderer handling per segment (§3.2 "We leverage
/// additional FPCs for sequencing, buffering, and reordering").
pub const SEQR: Cost = Cost {
    compute: 20,
    mem: 10,
};

/// Flow-scheduler work per scheduling decision (Carousel enqueue/dequeue
/// on EMEM hardware queues, §3.4).
pub const SCHED_DECISION: Cost = Cost {
    compute: 80,
    mem: 60,
};

/// TCP/IP checksum of an MTU segment (CRC/checksum acceleration on the
/// packet engines; charged on the DMA stage at emit time).
pub const CHECKSUM: Cost = Cost {
    compute: 25,
    mem: 0,
};

/// Built-in congestion-measurement fold, native fast path (per-ACK state
/// accumulation in the post-processor — a handful of adds; far below the
/// §2.3 1,500-cycle control computation it replaces on the FPC). Custom
/// folds instead charge `ext::EBPF_PER_INSN` per executed instruction.
pub const FOLD_NATIVE: Cost = Cost {
    compute: 10,
    mem: 6,
};

/// Extension-module overheads (Table 2).
pub mod ext {
    use flextoe_nfp::Cost;
    /// All 48 tracepoints enabled: counters on every stage transition.
    /// Table 2: 11.35 -> 8.67 MOps (-24%).
    pub const TRACEPOINTS_PER_STAGE: Cost = Cost {
        compute: 22,
        mem: 8,
    };
    /// tcpdump logging, per packet (filter eval + capture copy).
    /// Table 2: -43% with all packets logged.
    pub const TCPDUMP_CAPTURE: Cost = Cost {
        compute: 150,
        mem: 160,
    };
    /// Per-eBPF-instruction interpretation cost (NFP executes compiled
    /// eBPF natively; a small multiple of native cost models the
    /// marshalling + map helpers).
    pub const EBPF_PER_INSN: Cost = Cost { compute: 2, mem: 0 };
    /// XDP harness overhead per packet (Table 2: null program -4%).
    pub const XDP_HARNESS: Cost = Cost {
        compute: 30,
        mem: 10,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_sim::clocks::FPC_800MHZ;

    #[test]
    fn protocol_island_rate_matches_table2_anchor() {
        // One echo op ≈ RX(data) + HC + TX + RX(ack) on the protocol FPC.
        let per_op = PROTO_RX.compute + PROTO_HC.compute + PROTO_TX.compute + PROTO_RX_ACK.compute;
        let island_ops = FPC_800MHZ.hz() / per_op;
        let total = island_ops * 4; // four flow-group islands
        assert!(
            (10_000_000..=13_000_000).contains(&total),
            "4-island echo rate {total} ops/s should be ≈ 11.35 MOps (Table 2)"
        );
    }

    #[test]
    fn per_segment_budgets_are_far_below_cc_cost() {
        // §2.3: congestion avoidance costs 1,500 cycles — data-path stages
        // must be an order of magnitude cheaper.
        for c in [PRE_RX, PROTO_RX, POST_RX, DMA_STAGE, CTXQ_STAGE] {
            assert!(c.total() < 300, "{c:?}");
        }
    }

    #[test]
    fn tracepoint_overhead_near_paper_ratio() {
        // Tracepoints add cost at ~5 stage transitions per op on the
        // protocol-path; Table 2 reports 11.35 -> 8.67 MOps (ratio 0.764).
        let base = PROTO_RX.compute + PROTO_HC.compute + PROTO_TX.compute + PROTO_RX_ACK.compute;
        let with = base + 4 * ext::TRACEPOINTS_PER_STAGE.compute;
        let ratio = base as f64 / with as f64;
        assert!((0.70..=0.83).contains(&ratio), "ratio {ratio}");
    }
}
