//! # flextoe-core — the FlexTOE TCP data-path
//!
//! The paper's primary contribution (§3): a TCP data-path decomposed into
//! fine-grained modules organized as a data-parallel pipeline —
//! pre-processing, protocol, post-processing, DMA, and context-queue
//! stages — with segment sequencing/reordering, a Carousel flow scheduler,
//! per-stage connection-state partitioning (Table 5), and an extension
//! module/XDP API.
//!
//! The protocol logic itself ([`proto`]) is pure, sans-IO state-machine
//! code; the pipeline stages ([`stages`]) execute it under the simulated
//! NFP-4000 hardware model of `flextoe-nfp`, and [`pipeline::FlexToeNic`]
//! wires a complete NIC into a `flextoe-sim` simulation.

pub mod costs;
pub mod hostmem;
pub mod module;
pub mod pipeline;
pub mod proto;
pub mod reorder;
pub mod sched;
pub mod segment;
pub mod stages;
pub mod state;

pub use hostmem::{
    shared_buf, shared_ctxq, AppToNic, CtxQueuePair, NicToApp, PayloadBuf, SharedBuf,
    SharedCtxQueue,
};
pub use module::{DataPathModule, Hook, ModuleChain, ModuleVerdict, TcpdumpModule, XdpModule};
pub use pipeline::{FlexToeNic, NicHandle, PoolGauges};
pub use proto::{RxOutcome, RxSummary, TxSeg};
pub use segment::{
    shared_seg_pool, shared_work_pool, ConnEntry, ConnTable, NicConfig, SharedConnTable,
    SharedSegPool, SharedWorkPool, WorkPool,
};
pub use stages::{AppNotify, Doorbell, PipeCfg, Redirect, RegisterCtx, SchedCtl};
pub use state::{PostState, PreState, ProtoState, CONN_STATE_BYTES};
