//! The Carousel flow scheduler (§3.4).
//!
//! "We implement our flow scheduler based on Carousel. Carousel schedules
//! a large number of flows using a time wheel. Based on the next
//! transmission time, as computed from rate limits and windows, we enqueue
//! flows into corresponding slots in the time wheel. … To conserve work,
//! the flow scheduler only adds flows with a non-zero transmit window into
//! the time wheel and bypasses the rate limiter for uncongested flows.
//! These flows are scheduled round-robin."
//!
//! Rates are programmed by the control plane in *interval-per-byte* units
//! (cycles/byte in hardware — the NFP has no division; here ps/byte),
//! "enabl\[ing\] the flow scheduler to compute the time slot using only
//! multiplication".

use std::collections::VecDeque;

use flextoe_sim::{Duration, Time};

#[derive(Clone, Copy, Debug, Default)]
struct ConnSched {
    registered: bool,
    /// Bytes currently eligible (FS feedback from the protocol stage).
    sendable: u32,
    /// Pacing interval in ps/byte; 0 = uncongested (round-robin bypass).
    interval_ps_per_byte: u64,
    /// Earliest next transmission (pacing state).
    next_send: Time,
    /// Whether the connection currently sits in the wheel or RR queue.
    queued: bool,
}

/// A TX trigger emitted by the scheduler: "transmission is triggered by
/// the flow scheduler when a connection can send segments" (§3.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trigger {
    pub conn: u32,
    /// Estimated segment payload (actual length decided by the protocol
    /// stage, which is authoritative).
    pub bytes_est: u32,
}

pub struct Carousel {
    granularity: Duration,
    slots: Vec<VecDeque<u32>>,
    /// One bit per slot: set iff the slot's queue is non-empty. Keeps
    /// [`Carousel::earliest_work`] and [`Carousel::advance`] off the
    /// O(slots) linear scan that used to dominate simulation wall time —
    /// a wake-up probe touches at most `slots/64` words and typically one.
    occupied: Vec<u64>,
    /// Index of the slot covering `wheel_base`.
    cur_slot: usize,
    wheel_base: Time,
    rr: VecDeque<u32>,
    /// Connections currently queued in wheel slots (not the RR queue).
    /// Zero — the uncongested steady state — lets `advance` and
    /// `earliest_work` skip the occupancy-bitmap scan entirely.
    wheel_len: usize,
    conns: Vec<ConnSched>,
    pub triggers: u64,
    pub empty_pops: u64,
}

/// Default slot granularity: 1 µs ("a time wheel with a small slot
/// granularity and large horizon", §4 "Flow scheduler").
pub const DEFAULT_GRANULARITY: Duration = Duration::from_us(1);
/// Default horizon: 4096 slots ≈ 4 ms.
pub const DEFAULT_SLOTS: usize = 4096;

impl Carousel {
    pub fn new(granularity: Duration, n_slots: usize) -> Carousel {
        assert!(n_slots >= 2 && granularity > Duration::ZERO);
        Carousel {
            granularity,
            slots: (0..n_slots).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; n_slots.div_ceil(64)],
            cur_slot: 0,
            wheel_base: Time::ZERO,
            rr: VecDeque::new(),
            wheel_len: 0,
            conns: Vec::new(),
            triggers: 0,
            empty_pops: 0,
        }
    }

    #[inline]
    fn mark_slot(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn sync_slot(&mut self, slot: usize) {
        if self.slots[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
    }

    /// Offset (in slots, from `cur_slot`) of the nearest occupied slot,
    /// scanning the bitmap word-wise with wrap-around. `None` when the
    /// wheel is empty.
    fn next_occupied_offset(&self) -> Option<usize> {
        let n = self.slots.len();
        let words = self.occupied.len();
        let (start_w, start_b) = (self.cur_slot / 64, self.cur_slot % 64);
        // first examined word: mask off bits before cur_slot
        let mut w = self.occupied[start_w] & (!0u64 << start_b);
        for i in 0..=words {
            if w != 0 {
                let slot = ((start_w + i) % words) * 64 + w.trailing_zeros() as usize;
                debug_assert!(slot < n, "occupancy bit beyond wheel");
                return Some((slot + n - self.cur_slot) % n);
            }
            if i == words {
                break;
            }
            let wi = (start_w + i + 1) % words;
            w = self.occupied[wi];
            if wi == start_w {
                // wrapped back onto the start word: only the bits before
                // cur_slot remain unexamined
                w &= !(!0u64 << start_b);
            }
        }
        None
    }

    pub fn with_defaults() -> Carousel {
        Carousel::new(DEFAULT_GRANULARITY, DEFAULT_SLOTS)
    }

    fn conn_mut(&mut self, conn: u32) -> &mut ConnSched {
        let idx = conn as usize;
        if idx >= self.conns.len() {
            self.conns.resize(idx + 1, ConnSched::default());
        }
        &mut self.conns[idx]
    }

    pub fn register(&mut self, conn: u32) {
        let c = self.conn_mut(conn);
        *c = ConnSched {
            registered: true,
            ..Default::default()
        };
    }

    pub fn unregister(&mut self, conn: u32) {
        // Lazy removal: stale queue entries are discarded on pop.
        if let Some(c) = self.conns.get_mut(conn as usize) {
            c.registered = false;
            c.sendable = 0;
        }
    }

    /// Control-plane MMIO: program the pacing interval (0 = uncongested).
    pub fn set_rate(&mut self, conn: u32, interval_ps_per_byte: u64) {
        self.conn_mut(conn).interval_ps_per_byte = interval_ps_per_byte;
    }

    pub fn rate_of(&self, conn: u32) -> u64 {
        self.conns
            .get(conn as usize)
            .map(|c| c.interval_ps_per_byte)
            .unwrap_or(0)
    }

    /// FS feedback: absolute sendable-byte count from the protocol stage.
    pub fn update_sendable(&mut self, conn: u32, sendable: u32, now: Time) {
        let c = self.conn_mut(conn);
        if !c.registered {
            return;
        }
        c.sendable = sendable;
        if sendable > 0 && !c.queued {
            c.queued = true;
            let (uncongested, next_send) = (c.interval_ps_per_byte == 0, c.next_send);
            if uncongested {
                self.rr.push_back(conn);
            } else {
                self.enqueue_wheel(conn, next_send.max(now), now);
            }
        }
    }

    fn enqueue_wheel(&mut self, conn: u32, at: Time, now: Time) {
        self.advance(now);
        let n = self.slots.len();
        let offset_slots = if at <= self.wheel_base {
            0
        } else {
            (((at - self.wheel_base).ps()) / self.granularity.ps()) as usize
        };
        // Clamp beyond-horizon deadlines to the furthest slot.
        let offset = offset_slots.min(n - 1);
        let slot = (self.cur_slot + offset) % n;
        self.slots[slot].push_back(conn);
        self.wheel_len += 1;
        self.mark_slot(slot);
    }

    /// Rotate the wheel so `cur_slot` covers `now`, spilling due flows
    /// into the RR (ready) queue. Runs of empty slots are skipped in one
    /// step via the occupancy bitmap.
    fn advance(&mut self, now: Time) {
        let n = self.slots.len();
        if self.wheel_len == 0 {
            // nothing queued anywhere: rotate the base directly — same
            // arithmetic as the scan path's "no occupied slot" case,
            // without touching the bitmap
            if self.wheel_base + self.granularity <= now {
                let elapsed_slots = ((now - self.wheel_base).ps() / self.granularity.ps()) as usize;
                self.cur_slot = (self.cur_slot + elapsed_slots) % n;
                self.wheel_base += self.granularity * elapsed_slots as u64;
            }
            return;
        }
        while self.wheel_base + self.granularity <= now {
            let elapsed_slots = ((now - self.wheel_base).ps() / self.granularity.ps()) as usize;
            if self.slots[self.cur_slot].is_empty() {
                // jump straight to the next occupied slot (or to `now` if
                // nothing is due before it)
                let skip = match self.next_occupied_offset() {
                    Some(0) => unreachable!("empty slot marked occupied"),
                    Some(off) => off.min(elapsed_slots),
                    None => elapsed_slots,
                };
                self.cur_slot = (self.cur_slot + skip) % n;
                self.wheel_base += self.granularity * skip as u64;
                continue;
            }
            // everything in the current slot is due
            while let Some(conn) = self.slots[self.cur_slot].pop_front() {
                self.wheel_len -= 1;
                self.rr.push_back(conn);
            }
            self.sync_slot(self.cur_slot);
            self.cur_slot = (self.cur_slot + 1) % n;
            self.wheel_base += self.granularity;
        }
    }

    /// Emit the next TX trigger if any connection is due.
    pub fn next_trigger(&mut self, now: Time, mss: u32) -> Option<Trigger> {
        self.advance(now);
        // Current slot's flows are due too (deadline passed within slot).
        while self.wheel_len > 0 {
            let Some(conn) = self.slots[self.cur_slot].front().copied() else {
                break;
            };
            let due = self
                .conns
                .get(conn as usize)
                .map(|c| c.next_send <= now)
                .unwrap_or(true);
            if due {
                self.slots[self.cur_slot].pop_front();
                self.wheel_len -= 1;
                self.rr.push_back(conn);
            } else {
                break;
            }
        }
        self.sync_slot(self.cur_slot);
        while let Some(conn) = self.rr.pop_front() {
            let c = &mut self.conns[conn as usize];
            if !c.registered || c.sendable == 0 {
                c.queued = false;
                self.empty_pops += 1;
                continue;
            }
            let bytes = c.sendable.min(mss);
            c.sendable -= bytes;
            if c.interval_ps_per_byte > 0 {
                c.next_send =
                    c.next_send.max(now) + Duration::from_ps(bytes as u64 * c.interval_ps_per_byte);
            }
            if c.sendable > 0 {
                let (uncongested, next_send) = (c.interval_ps_per_byte == 0, c.next_send);
                if uncongested {
                    self.rr.push_back(conn);
                } else {
                    self.enqueue_wheel(conn, next_send, now);
                }
            } else {
                c.queued = false;
            }
            self.triggers += 1;
            return Some(Trigger {
                conn,
                bytes_est: bytes,
            });
        }
        None
    }

    /// Earliest instant at which a trigger may become available, for the
    /// scheduler node's wake-up timer. `None` when completely idle.
    pub fn earliest_work(&self, now: Time) -> Option<Time> {
        if !self.rr.is_empty() {
            return Some(now);
        }
        if self.wheel_len == 0 {
            return None;
        }
        let i = self.next_occupied_offset()?;
        let t = self.wheel_base + self.granularity * (i as u64);
        Some(t.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    #[test]
    fn uncongested_flow_round_robin() {
        let mut c = Carousel::with_defaults();
        for conn in 0..3 {
            c.register(conn);
            c.update_sendable(conn, 2 * MSS, Time::ZERO);
        }
        let order: Vec<u32> = (0..6)
            .map(|_| c.next_trigger(Time::ZERO, MSS).unwrap().conn)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2], "round-robin fairness");
        assert!(c.next_trigger(Time::ZERO, MSS).is_none(), "all drained");
    }

    #[test]
    fn trigger_sizes_track_sendable() {
        let mut c = Carousel::with_defaults();
        c.register(1);
        c.update_sendable(1, MSS + 100, Time::ZERO);
        assert_eq!(
            c.next_trigger(Time::ZERO, MSS),
            Some(Trigger {
                conn: 1,
                bytes_est: MSS
            })
        );
        assert_eq!(
            c.next_trigger(Time::ZERO, MSS),
            Some(Trigger {
                conn: 1,
                bytes_est: 100
            })
        );
        assert_eq!(c.next_trigger(Time::ZERO, MSS), None);
    }

    #[test]
    fn rate_limited_flow_paced_by_wheel() {
        let mut c = Carousel::with_defaults();
        c.register(7);
        // 1448 B at ~10 µs per segment -> ~6.9 ps/byte… use 7 ps/byte ≈ 10.1µs/MSS
        c.set_rate(7, 7_000); // 7000 ps/byte -> MSS takes ~10.1 ms? no: 1448*7000ps = 10.1us
        c.update_sendable(7, 10 * MSS, Time::ZERO);
        let t0 = c.next_trigger(Time::ZERO, MSS).unwrap();
        assert_eq!(t0.conn, 7);
        // immediately after, the flow is paced — not eligible yet
        assert!(c.next_trigger(Time::from_us(1), MSS).is_none());
        // after the pacing interval it fires again
        let t = c.next_trigger(Time::from_us(11), MSS);
        assert!(t.is_some(), "flow due after pacing interval");
    }

    #[test]
    fn work_conserving_mix() {
        let mut c = Carousel::with_defaults();
        c.register(1); // paced hard
        c.set_rate(1, 1_000_000); // 1.448ms per MSS
        c.register(2); // uncongested
        c.update_sendable(1, 10 * MSS, Time::ZERO);
        c.update_sendable(2, 3 * MSS, Time::ZERO);
        // flow 1 fires once (first segment unpaced), then flow 2 dominates
        let mut seen = Vec::new();
        let mut now = Time::ZERO;
        for _ in 0..4 {
            if let Some(t) = c.next_trigger(now, MSS) {
                seen.push(t.conn);
            }
            now += Duration::from_us(1);
        }
        assert_eq!(seen.iter().filter(|&&x| x == 2).count(), 3);
        assert_eq!(seen.iter().filter(|&&x| x == 1).count(), 1);
    }

    #[test]
    fn zero_window_flows_not_in_wheel() {
        // "the flow scheduler only adds flows with a non-zero transmit
        // window into the time wheel"
        let mut c = Carousel::with_defaults();
        c.register(3);
        c.update_sendable(3, 0, Time::ZERO);
        assert!(c.earliest_work(Time::ZERO).is_none());
        assert!(c.next_trigger(Time::ZERO, MSS).is_none());
        c.update_sendable(3, 500, Time::ZERO);
        assert_eq!(c.earliest_work(Time::ZERO), Some(Time::ZERO));
    }

    #[test]
    fn unregistered_conn_never_triggers() {
        let mut c = Carousel::with_defaults();
        c.register(5);
        c.update_sendable(5, MSS, Time::ZERO);
        c.unregister(5);
        assert!(c.next_trigger(Time::ZERO, MSS).is_none());
        assert_eq!(c.empty_pops, 1);
        // updates after unregister are ignored
        c.update_sendable(5, MSS, Time::ZERO);
        assert!(c.next_trigger(Time::ZERO, MSS).is_none());
    }

    #[test]
    fn earliest_work_points_at_wheel_slot() {
        let mut c = Carousel::with_defaults();
        c.register(9);
        c.set_rate(9, 10_000); // 14.48us per MSS
        c.update_sendable(9, 2 * MSS, Time::ZERO);
        // first trigger immediate
        c.next_trigger(Time::ZERO, MSS).unwrap();
        let next = c.earliest_work(Time::ZERO).unwrap();
        assert!(next > Time::ZERO && next <= Time::from_us(15), "{next:?}");
    }

    #[test]
    fn beyond_horizon_clamped_not_lost() {
        let mut c = Carousel::new(Duration::from_us(1), 16); // 16us horizon
        c.register(2);
        c.set_rate(2, 1_000_000); // MSS pacing 1.448ms >> horizon
        c.update_sendable(2, 2 * MSS, Time::ZERO);
        c.next_trigger(Time::ZERO, MSS).unwrap();
        // the second segment is clamped to the horizon's far edge; it must
        // still fire eventually.
        let mut fired = false;
        let mut now = Time::ZERO;
        for _ in 0..2000 {
            now += Duration::from_us(2);
            if c.next_trigger(now, MSS).is_some() {
                fired = true;
                break;
            }
        }
        assert!(fired, "clamped flow starved");
    }

    #[test]
    fn fairness_across_many_flows() {
        // 64 uncongested flows with equal backlog drain near-equally —
        // the Fig. 16 property at small scale.
        let mut c = Carousel::with_defaults();
        let n = 64u32;
        for conn in 0..n {
            c.register(conn);
            c.update_sendable(conn, 100 * MSS, Time::ZERO);
        }
        let mut counts = vec![0u32; n as usize];
        for _ in 0..(n * 10) {
            let t = c.next_trigger(Time::ZERO, MSS).unwrap();
            counts[t.conn as usize] += 1;
        }
        assert!(counts.iter().all(|&x| x == 10), "{counts:?}");
    }
}
