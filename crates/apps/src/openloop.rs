//! Open-loop traffic generation: Poisson arrival processes driving
//! hundreds-to-thousands of concurrent connections per host with
//! heavy-tailed RPC sizes — the load pattern that pressures the per-flow
//! state hierarchy (WorkPool, PktBufPool, connection-state caches) the
//! way the paper's connection-scalability experiment (Fig. 13) does.
//!
//! Unlike the closed-loop echo client, arrivals here do not wait for
//! completions: a request is *generated* by the Poisson process and its
//! latency is measured from generation to response completion, so queueing
//! delay under overload is visible in the tail.
//!
//! ## Framing
//!
//! Requests and responses vary in size per RPC, so the byte stream is
//! framed: every request starts with a 16-byte header (magic, extra
//! request bytes, response length, sequence cookie) written as real data;
//! the remaining request bytes and the entire response travel as
//! descriptor-only bulk (`send_bytes`). Responses complete strictly in
//! request order per connection — TCP byte-stream order — which the
//! client's per-connection FIFO relies on.

use std::collections::VecDeque;

use flextoe_nfp::{Cost, FpcTimer};
use flextoe_sim::{Ctx, Duration, FxHashMap, Histogram, Msg, Node, Rng, Tick, Time};
use flextoe_wire::Ip4;

use crate::rpc::StackInit;
use crate::stack::{SockEvent, StackApi, StackOp};

/// Bytes of real framing data at the head of every request.
pub const FRAME_HDR: u32 = 16;
const MAGIC: u32 = 0x4652_5043; // "FRPC"

/// RPC size distribution. `Pareto` is the heavy-tailed option (bounded
/// Pareto via inverse-CDF sampling): most RPCs are small, a fat tail is
/// large — the classic datacenter mix.
#[derive(Clone, Copy, Debug)]
pub enum SizeDist {
    Fixed(u32),
    /// Uniform in `[lo, hi]`.
    Uniform {
        lo: u32,
        hi: u32,
    },
    /// Bounded Pareto on `[min, max]` with shape `alpha` (smaller alpha =
    /// heavier tail; alpha ≤ 1 has unbounded mean on the unbounded form).
    Pareto {
        alpha: f64,
        min: u32,
        max: u32,
    },
}

impl SizeDist {
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        match *self {
            SizeDist::Fixed(v) => v,
            SizeDist::Uniform { lo, hi } => rng.range(lo as u64, hi as u64) as u32,
            SizeDist::Pareto { alpha, min, max } => {
                let (xm, xx) = (min.max(1) as f64, max.max(min.max(1)) as f64);
                let u = rng.f64();
                let ratio = (xm / xx).powf(alpha);
                let x = xm / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                (x as u32).clamp(min, max)
            }
        }
    }

    /// Expected value (experiment load accounting).
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(v) => v as f64,
            SizeDist::Uniform { lo, hi } => (lo as f64 + hi as f64) / 2.0,
            SizeDist::Pareto { alpha, min, max } => {
                // mean of the bounded Pareto on [xm, xx]
                let (xm, xx) = (min.max(1) as f64, max.max(min.max(1)) as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    let h = xm / (1.0 - xm / xx);
                    return h * (xx / xm).ln();
                }
                let num = xm.powf(alpha) / (1.0 - (xm / xx).powf(alpha));
                num * alpha / (alpha - 1.0)
                    * (1.0 / xm.powf(alpha - 1.0) - 1.0 / xx.powf(alpha - 1.0))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct FramedServerConfig {
    pub port: u16,
    /// Artificial application processing per RPC (host cycles).
    pub app_cycles: u64,
    pub host_clock: flextoe_sim::Clock,
}

impl Default for FramedServerConfig {
    fn default() -> Self {
        FramedServerConfig {
            port: 7979,
            app_cycles: 0,
            host_clock: flextoe_sim::clocks::HOST_2GHZ,
        }
    }
}

struct FramedConn {
    hdr: [u8; FRAME_HDR as usize],
    hdr_have: usize,
    /// Request payload bytes still to consume for the current request.
    req_remaining: u32,
    /// Response length parsed from the current request's header.
    resp_next: u32,
    /// Response bytes accepted for transmission but blocked on buffer
    /// space.
    backlog: u32,
}

/// Application processing of one request finished; transmit its response.
struct Respond {
    conn: u32,
    resp: u32,
}
flextoe_sim::custom_msg!(Respond);

/// Serves the framed open-loop protocol: parses request headers, consumes
/// request payloads, responds with the requested number of bytes after
/// simulated application processing.
pub struct FramedServerApp<S: StackApi> {
    cfg: FramedServerConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    core: FpcTimer,
    conns: FxHashMap<u32, FramedConn>,
    pub requests: u64,
    pub accepted: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Requests whose header failed the magic check (0 on a healthy run).
    pub bad_frames: u64,
    /// Connections the control plane aborted under us (RTO give-up).
    pub aborted: u64,
}

impl<S: StackApi + 'static> FramedServerApp<S> {
    pub fn new(cfg: FramedServerConfig, init: StackInit<S>) -> Self {
        FramedServerApp {
            core: FpcTimer::new(cfg.host_clock, 1),
            cfg,
            stack: None,
            init: Some(init),
            conns: FxHashMap::default(),
            requests: 0,
            accepted: 0,
            bytes_in: 0,
            bytes_out: 0,
            bad_frames: 0,
            aborted: 0,
        }
    }

    /// Host-core utilization so far (busy cycles as time).
    pub fn core_busy(&self) -> Duration {
        self.core.busy
    }

    pub fn open_conns(&self) -> usize {
        self.conns.len()
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<SockEvent>) {
        for ev in events {
            match ev {
                SockEvent::Accepted { conn, .. } => {
                    self.accepted += 1;
                    self.conns.insert(
                        conn,
                        FramedConn {
                            hdr: [0; FRAME_HDR as usize],
                            hdr_have: 0,
                            req_remaining: 0,
                            resp_next: 0,
                            backlog: 0,
                        },
                    );
                }
                SockEvent::Readable { conn, .. } => self.drain_rx(ctx, conn),
                SockEvent::Writable { conn, .. } => self.push_response(ctx, conn, 0),
                SockEvent::Eof { conn } => {
                    if let Some(stack) = self.stack.as_mut() {
                        stack.close(ctx, conn);
                    }
                    self.conns.remove(&conn);
                }
                SockEvent::Aborted { conn } => {
                    // control plane already tore the flow down; just drop
                    // the framing state (no FIN to send on a dead conn)
                    self.aborted += 1;
                    self.conns.remove(&conn);
                }
                _ => {}
            }
        }
    }

    /// Advance the framing state machine as far as the readable bytes go.
    fn drain_rx(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        loop {
            let stack = self.stack.as_mut().unwrap();
            let Some(st) = self.conns.get_mut(&conn) else {
                return;
            };
            if st.hdr_have < FRAME_HDR as usize {
                // the header travels as real bytes: read exactly the rest
                let want = FRAME_HDR - st.hdr_have as u32;
                let data = stack.recv(ctx, conn, want);
                if data.is_empty() {
                    return;
                }
                st.hdr[st.hdr_have..st.hdr_have + data.len()].copy_from_slice(&data);
                st.hdr_have += data.len();
                self.bytes_in += data.len() as u64;
                if st.hdr_have < FRAME_HDR as usize {
                    continue; // maybe more readable bytes
                }
                let hdr = st.hdr;
                let word =
                    |i: usize| u32::from_le_bytes([hdr[i], hdr[i + 1], hdr[i + 2], hdr[i + 3]]);
                if word(0) != MAGIC {
                    // byte-stream desync: the length fields are garbage
                    // (up to ~4 GiB) — kill the connection rather than
                    // consume and answer a garbage-sized request
                    self.bad_frames += 1;
                    stack.close(ctx, conn);
                    self.conns.remove(&conn);
                    return;
                }
                st.req_remaining = word(4);
                st.resp_next = word(8);
            }
            let st = self.conns.get_mut(&conn).unwrap();
            if st.req_remaining > 0 {
                let n = stack.recv_bytes(ctx, conn, st.req_remaining);
                if n == 0 {
                    return;
                }
                st.req_remaining -= n;
                self.bytes_in += n as u64;
                if st.req_remaining > 0 {
                    return;
                }
            }
            // request complete: charge the application core, then respond
            let resp = st.resp_next;
            st.hdr_have = 0;
            self.requests += 1;
            let cycles = self.cfg.app_cycles
                + stack.host_overhead(StackOp::Recv)
                + stack.host_overhead(StackOp::Send)
                + stack.host_overhead(StackOp::Poll);
            let done = self.core.execute(ctx.now(), Cost::new(cycles, 0));
            ctx.wake(done.saturating_since(ctx.now()), Respond { conn, resp });
        }
    }

    fn push_response(&mut self, ctx: &mut Ctx<'_>, conn: u32, extra: u32) {
        let stack = self.stack.as_mut().unwrap();
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        st.backlog += extra;
        while st.backlog > 0 {
            let sent = stack.send_bytes(ctx, conn, st.backlog);
            if sent == 0 {
                break; // socket buffer full: resume on Writable
            }
            st.backlog -= sent;
            self.bytes_out += sent as u64;
        }
    }
}

impl<S: StackApi + 'static> Node for FramedServerApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().expect("first message starts the app");
            let mut stack = init(ctx, ctx.self_id());
            stack.listen(ctx, self.cfg.port);
            self.stack = Some(stack);
            return;
        }
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                self.handle_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        let r = flextoe_sim::cast::<Respond>(msg);
        self.push_response(ctx, r.conn, r.resp);
    }

    fn name(&self) -> String {
        "framed-server".to_string()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    pub server_ip: Ip4,
    pub server_port: u16,
    pub n_conns: u32,
    /// Aggregate Poisson arrival rate (requests/second over all conns).
    pub rate_rps: f64,
    /// Total request size including the 16-byte header (clamped up).
    pub req_size: SizeDist,
    pub resp_size: SizeDist,
    /// Responses completed before this instant are not recorded.
    pub warmup: Time,
    /// Halt the simulation after this many measured responses.
    pub stop_after: Option<u64>,
    /// Stagger connection establishment to avoid a SYN burst.
    pub connect_spacing: Duration,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            server_ip: Ip4::host(2),
            server_port: 7979,
            n_conns: 1,
            rate_rps: 100_000.0,
            req_size: SizeDist::Fixed(FRAME_HDR),
            resp_size: SizeDist::Fixed(64),
            warmup: Time::ZERO,
            stop_after: None,
            connect_spacing: Duration::from_us(1),
        }
    }
}

/// Unsent request bytes: literal header bytes, then descriptor-only bulk.
enum TxChunk {
    Lit(Vec<u8>, usize),
    Pad(u32),
}

struct OlConn {
    conn: u32,
    /// (generated-at, expected response bytes), FIFO per connection.
    outstanding: VecDeque<(Time, u32)>,
    rx_pending: u32,
    tx: VecDeque<TxChunk>,
    measured_resp_bytes: u64,
    /// Dead connections (peer closed / reset) leave the rotation; their
    /// unanswered requests are written off.
    alive: bool,
}

struct NextArrival;
flextoe_sim::custom_msg!(NextArrival);

/// Test/experiment control: stop generating and close every connection
/// (FIN; the control planes tear the flows down once both sides drain).
pub struct CloseAll;
flextoe_sim::custom_msg!(CloseAll);

/// Open-loop framed-RPC client: one Poisson arrival process spreads
/// requests round-robin over `n_conns` connections.
pub struct OpenLoopClientApp<S: StackApi> {
    cfg: OpenLoopConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    conns: Vec<OlConn>,
    by_id: FxHashMap<u32, usize>,
    rr: usize,
    started_conns: u32,
    seq: u32,
    closing: bool,
    pub connected: u32,
    pub failed: u32,
    /// Generation→completion latency of measured responses, nanoseconds.
    pub latency: Histogram,
    pub issued: u64,
    /// Requests written off because their connection died.
    pub dead_requests: u64,
    /// Connections the control plane aborted (RTO give-up on a blackholed
    /// path); their unanswered requests land in `dead_requests`.
    pub aborted_conns: u64,
    pub completed: u64,
    pub measured: u64,
    pub bytes_out: u64,
    pub bytes_in: u64,
    pub first_measured_at: Time,
    pub last_measured_at: Time,
}

impl<S: StackApi + 'static> OpenLoopClientApp<S> {
    pub fn new(cfg: OpenLoopConfig, init: StackInit<S>) -> Self {
        OpenLoopClientApp {
            cfg,
            stack: None,
            init: Some(init),
            conns: Vec::new(),
            by_id: FxHashMap::default(),
            rr: 0,
            started_conns: 0,
            seq: 0,
            closing: false,
            connected: 0,
            failed: 0,
            latency: Histogram::new(),
            issued: 0,
            dead_requests: 0,
            aborted_conns: 0,
            completed: 0,
            measured: 0,
            bytes_out: 0,
            bytes_in: 0,
            first_measured_at: Time::ZERO,
            last_measured_at: Time::ZERO,
        }
    }

    /// Measured response throughput over the measurement window.
    pub fn throughput_rps(&self) -> f64 {
        if self.measured < 2 {
            return 0.0;
        }
        let span = self
            .last_measured_at
            .saturating_since(self.first_measured_at);
        if span == Duration::ZERO {
            return 0.0;
        }
        (self.measured - 1) as f64 / span.as_secs_f64()
    }

    /// Measured (post-warmup) response bytes, host-fairness numerator.
    pub fn measured_resp_bytes(&self) -> u64 {
        self.conns.iter().map(|c| c.measured_resp_bytes).sum()
    }

    /// Requests generated but not yet answered (open-loop backlog).
    pub fn in_flight(&self) -> usize {
        self.conns.iter().map(|c| c.outstanding.len()).sum()
    }

    fn connect_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.started_conns >= self.cfg.n_conns {
            return;
        }
        let idx = self.started_conns as u64;
        self.started_conns += 1;
        let stack = self.stack.as_mut().unwrap();
        stack.connect(ctx, self.cfg.server_ip, self.cfg.server_port, idx);
        if self.started_conns < self.cfg.n_conns {
            ctx.wake(self.cfg.connect_spacing, Tick);
        }
    }

    fn schedule_arrival(&mut self, ctx: &mut Ctx<'_>) {
        let gap = ctx.rng.exp(1.0 / self.cfg.rate_rps);
        ctx.wake(Duration::from_secs_f64(gap), NextArrival);
    }

    /// Generate one request on the next live connection (round-robin).
    fn generate(&mut self, ctx: &mut Ctx<'_>) {
        if self.conns.is_empty() {
            return;
        }
        let mut slot = self.rr % self.conns.len();
        let mut scanned = 0;
        while !self.conns[slot].alive {
            self.rr += 1;
            slot = self.rr % self.conns.len();
            scanned += 1;
            if scanned == self.conns.len() {
                return; // every connection is dead: drop the arrival
            }
        }
        self.rr += 1;
        let req = self.cfg.req_size.sample(ctx.rng).max(FRAME_HDR);
        let resp = self.cfg.resp_size.sample(ctx.rng).max(1);
        self.seq = self.seq.wrapping_add(1);
        let mut hdr = Vec::with_capacity(FRAME_HDR as usize);
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&(req - FRAME_HDR).to_le_bytes());
        hdr.extend_from_slice(&resp.to_le_bytes());
        hdr.extend_from_slice(&self.seq.to_le_bytes());
        let st = &mut self.conns[slot];
        st.outstanding.push_back((ctx.now(), resp));
        st.tx.push_back(TxChunk::Lit(hdr, 0));
        if req > FRAME_HDR {
            st.tx.push_back(TxChunk::Pad(req - FRAME_HDR));
        }
        self.issued += 1;
        self.drain_tx(ctx, slot);
    }

    fn drain_tx(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let st = &mut self.conns[slot];
        let stack = self.stack.as_mut().unwrap();
        while let Some(chunk) = st.tx.front_mut() {
            match chunk {
                TxChunk::Lit(data, off) => {
                    let sent = stack.send(ctx, st.conn, &data[*off..]);
                    *off += sent;
                    self.bytes_out += sent as u64;
                    if *off < data.len() {
                        return; // socket buffer full: resume on Writable
                    }
                }
                TxChunk::Pad(n) => {
                    let sent = stack.send_bytes(ctx, st.conn, *n);
                    *n -= sent;
                    self.bytes_out += sent as u64;
                    if *n > 0 {
                        return;
                    }
                }
            }
            st.tx.pop_front();
        }
    }

    fn on_readable(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let Some(&slot) = self.by_id.get(&conn) else {
            return;
        };
        let stack = self.stack.as_mut().unwrap();
        let n = stack.recv_bytes(ctx, conn, u32::MAX);
        self.bytes_in += n as u64;
        let st = &mut self.conns[slot];
        st.rx_pending += n;
        while let Some(&(sent_at, resp)) = st.outstanding.front() {
            if st.rx_pending < resp {
                break;
            }
            st.rx_pending -= resp;
            st.outstanding.pop_front();
            self.completed += 1;
            if ctx.now() >= self.cfg.warmup {
                if self.measured == 0 {
                    self.first_measured_at = ctx.now();
                }
                self.last_measured_at = ctx.now();
                self.measured += 1;
                st.measured_resp_bytes += resp as u64;
                self.latency
                    .record(ctx.now().saturating_since(sent_at).as_ns());
                if let Some(limit) = self.cfg.stop_after {
                    if self.measured >= limit {
                        // one-shot: a test that clears the halt to drain
                        // (e.g. teardown) must not be re-halted by every
                        // late response
                        self.cfg.stop_after = None;
                        ctx.halt();
                        return;
                    }
                }
            }
        }
    }

    /// Remove a dead connection from the rotation and write off its
    /// unanswered requests (counted in `dead_requests`).
    fn write_off(&mut self, conn: u32) {
        if let Some(&slot) = self.by_id.get(&conn) {
            let st = &mut self.conns[slot];
            st.alive = false;
            st.tx.clear();
            self.dead_requests += st.outstanding.len() as u64;
            st.outstanding.clear();
            st.rx_pending = 0;
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<SockEvent>) {
        for ev in events {
            match ev {
                SockEvent::Connected { conn, .. } => {
                    self.connected += 1;
                    let slot = self.conns.len();
                    self.conns.push(OlConn {
                        conn,
                        outstanding: VecDeque::new(),
                        rx_pending: 0,
                        tx: VecDeque::new(),
                        measured_resp_bytes: 0,
                        alive: true,
                    });
                    self.by_id.insert(conn, slot);
                    // one arrival process, started by the first connection
                    if self.connected == 1 {
                        self.schedule_arrival(ctx);
                    }
                }
                SockEvent::ConnectFailed { .. } => {
                    self.failed += 1;
                }
                SockEvent::Readable { conn, .. } => self.on_readable(ctx, conn),
                SockEvent::Writable { conn, .. } => {
                    if let Some(&slot) = self.by_id.get(&conn) {
                        self.drain_tx(ctx, slot);
                    }
                }
                SockEvent::Eof { conn } => {
                    // the peer closed (or reset) this connection: take it
                    // out of the rotation and write off its unanswered
                    // requests so in-flight accounting doesn't inflate
                    self.write_off(conn);
                    if let Some(stack) = self.stack.as_mut() {
                        stack.close(ctx, conn);
                    }
                }
                SockEvent::Aborted { conn } => {
                    // control plane gave up on the flow (RTO budget spent):
                    // same write-off, but no close — the flow is already
                    // torn down NIC-side
                    self.aborted_conns += 1;
                    self.write_off(conn);
                }
                SockEvent::Accepted { .. } => {}
            }
        }
    }
}

impl<S: StackApi + 'static> Node for OpenLoopClientApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().expect("first message starts the app");
            let stack = init(ctx, ctx.self_id());
            self.stack = Some(stack);
            self.connect_next(ctx);
            return;
        }
        let msg = match msg {
            Msg::Tick => {
                self.connect_next(ctx);
                return;
            }
            m => m,
        };
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                self.handle_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        let msg = match flextoe_sim::try_cast::<CloseAll>(msg) {
            Ok(_) => {
                self.closing = true;
                let stack = self.stack.as_mut().unwrap();
                for c in &self.conns {
                    stack.close(ctx, c.conn);
                }
                return;
            }
            Err(m) => m,
        };
        let _ = flextoe_sim::cast::<NextArrival>(msg);
        if self.closing {
            return; // arrival process parked
        }
        self.generate(ctx);
        self.schedule_arrival(ctx);
    }

    fn name(&self) -> String {
        "openloop-client".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dists_stay_in_bounds_and_hit_their_mean() {
        let mut rng = Rng::new(5);
        let dists = [
            SizeDist::Fixed(100),
            SizeDist::Uniform { lo: 10, hi: 90 },
            SizeDist::Pareto {
                alpha: 1.2,
                min: 64,
                max: 65_536,
            },
        ];
        for d in dists {
            let n = 200_000;
            let mut sum = 0.0;
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for _ in 0..n {
                let v = d.sample(&mut rng);
                sum += v as f64;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let mean = sum / n as f64;
            let want = d.mean();
            assert!(
                (mean - want).abs() / want < 0.05,
                "{d:?}: empirical mean {mean} vs analytic {want}"
            );
            match d {
                SizeDist::Fixed(v) => assert_eq!((lo, hi), (v, v)),
                SizeDist::Uniform { lo: l, hi: h } => {
                    assert!(lo >= l && hi <= h);
                }
                SizeDist::Pareto { min, max, .. } => {
                    assert!(lo >= min && hi <= max);
                    // heavy tail: the max draw dwarfs the mean
                    assert!(hi as f64 > 10.0 * mean, "tail: max {hi} mean {mean}");
                }
            }
        }
    }

    #[test]
    fn pareto_is_heavy_tailed_vs_uniform_of_same_mean() {
        let mut rng = Rng::new(9);
        let p = SizeDist::Pareto {
            alpha: 1.1,
            min: 64,
            max: 1 << 20,
        };
        let n = 100_000;
        let draws: Vec<u32> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let mean = draws.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let over_10x = draws.iter().filter(|&&v| v as f64 > 10.0 * mean).count();
        // a meaningful fraction of probability mass far above the mean
        assert!(
            over_10x > n / 1000,
            "heavy tail: {over_10x} draws > 10x mean"
        );
        let median = {
            let mut s = draws.clone();
            s.sort_unstable();
            s[n / 2]
        };
        assert!(
            (median as f64) < mean,
            "skew: median {median} < mean {mean}"
        );
    }
}
