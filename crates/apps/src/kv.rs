//! A memcached-like key-value store and a memtier-like load generator
//! (§2.1, §5.1): "a single-threaded Memcached server … 32 B keys and
//! values, using as many clients as necessary to saturate the server,
//! executing closed-loop KV transactions on persistent connections."
//!
//! The server speaks a real text protocol (a memcached subset) and keeps a
//! real hash table, so request parsing and store access are genuine work;
//! the per-request *cycle* budget charged to the host core is the Table 1
//! application share.

use flextoe_nfp::{Cost, FpcTimer};
use flextoe_sim::{Ctx, Duration, FxHashMap, Histogram, Msg, Node, Time};
use flextoe_wire::Ip4;

use crate::rpc::StackInit;
use crate::stack::{SockEvent, StackApi, StackOp};

/// Table 1: Memcached spends 0.89 kc per request on FlexTOE (the true
/// application work, identical across stacks).
pub const KV_APP_CYCLES: u64 = 890;

#[derive(Clone, Copy, Debug)]
pub struct KvServerConfig {
    pub port: u16,
    pub host_clock: flextoe_sim::Clock,
    /// Application cycles per request beyond the real parse/lookup work.
    pub app_cycles: u64,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            port: 11211,
            host_clock: flextoe_sim::clocks::HOST_2GHZ,
            app_cycles: KV_APP_CYCLES,
        }
    }
}

struct KvConn {
    rx: Vec<u8>,
    /// Pending response bytes (socket buffer was full).
    backlog: Vec<u8>,
}

struct KvRespond {
    conn: u32,
    resp: Vec<u8>,
}
flextoe_sim::custom_msg!(KvRespond);

pub struct KvServerApp<S: StackApi> {
    cfg: KvServerConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    core: FpcTimer,
    store: FxHashMap<Vec<u8>, Vec<u8>>,
    conns: FxHashMap<u32, KvConn>,
    pub gets: u64,
    pub sets: u64,
    pub hits: u64,
    pub errors: u64,
}

impl<S: StackApi + 'static> KvServerApp<S> {
    pub fn new(cfg: KvServerConfig, init: StackInit<S>) -> Self {
        KvServerApp {
            core: FpcTimer::new(cfg.host_clock, 1),
            cfg,
            stack: None,
            init: Some(init),
            store: FxHashMap::default(),
            conns: FxHashMap::default(),
            gets: 0,
            sets: 0,
            hits: 0,
            errors: 0,
        }
    }

    pub fn core_busy(&self) -> Duration {
        self.core.busy
    }
    pub fn requests(&self) -> u64 {
        self.gets + self.sets
    }

    /// Parse one complete request off the front of `rx`; returns the
    /// response, or None if the request is incomplete.
    fn parse_request(&mut self, rx: &mut Vec<u8>) -> Option<Vec<u8>> {
        let line_end = rx.windows(2).position(|w| w == b"\r\n")?;
        let line: Vec<u8> = rx[..line_end].to_vec();
        let mut parts = line.split(|&b| b == b' ');
        let cmd = parts.next()?;
        match cmd {
            b"get" => {
                let key = parts.next()?.to_vec();
                rx.drain(..line_end + 2);
                self.gets += 1;
                match self.store.get(&key) {
                    Some(val) => {
                        self.hits += 1;
                        let mut resp = Vec::with_capacity(val.len() + 48);
                        resp.extend_from_slice(b"VALUE ");
                        resp.extend_from_slice(&key);
                        resp.extend_from_slice(format!(" 0 {}\r\n", val.len()).as_bytes());
                        resp.extend_from_slice(val);
                        resp.extend_from_slice(b"\r\nEND\r\n");
                        Some(resp)
                    }
                    None => Some(b"END\r\n".to_vec()),
                }
            }
            b"set" => {
                let key = parts.next()?.to_vec();
                let _flags = parts.next()?;
                let _exp = parts.next()?;
                let len: usize = std::str::from_utf8(parts.next()?).ok()?.parse().ok()?;
                let need = line_end + 2 + len + 2;
                if rx.len() < need {
                    return None; // wait for the data block
                }
                let val = rx[line_end + 2..line_end + 2 + len].to_vec();
                rx.drain(..need);
                self.sets += 1;
                self.store.insert(key, val);
                Some(b"STORED\r\n".to_vec())
            }
            _ => {
                rx.drain(..line_end + 2);
                self.errors += 1;
                Some(b"ERROR\r\n".to_vec())
            }
        }
    }

    fn drain_rx(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let stack = self.stack.as_mut().unwrap();
        let data = stack.recv(ctx, conn, u32::MAX);
        let overhead = stack.host_overhead(StackOp::Recv)
            + stack.host_overhead(StackOp::Send)
            + stack.host_overhead(StackOp::Poll);
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        st.rx.extend_from_slice(&data);
        let mut rx = std::mem::take(&mut self.conns.get_mut(&conn).unwrap().rx);
        while let Some(resp) = self.parse_request(&mut rx) {
            let cycles = self.cfg.app_cycles + overhead;
            let done = self.core.execute(ctx.now(), Cost::new(cycles, 0));
            ctx.wake(done.saturating_since(ctx.now()), KvRespond { conn, resp });
        }
        if let Some(st) = self.conns.get_mut(&conn) {
            st.rx = rx;
        }
    }

    fn push(&mut self, ctx: &mut Ctx<'_>, conn: u32, resp: Vec<u8>) {
        let stack = self.stack.as_mut().unwrap();
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        st.backlog.extend_from_slice(&resp);
        if st.backlog.is_empty() {
            return;
        }
        let sent = stack.send(ctx, conn, &st.backlog);
        st.backlog.drain(..sent);
    }
}

impl<S: StackApi + 'static> Node for KvServerApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().unwrap();
            let mut stack = init(ctx, ctx.self_id());
            stack.listen(ctx, self.cfg.port);
            self.stack = Some(stack);
            return;
        }
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                for ev in events {
                    match ev {
                        SockEvent::Accepted { conn, .. } => {
                            self.conns.insert(
                                conn,
                                KvConn {
                                    rx: Vec::new(),
                                    backlog: Vec::new(),
                                },
                            );
                        }
                        SockEvent::Readable { conn, .. } => self.drain_rx(ctx, conn),
                        SockEvent::Writable { conn, .. } => self.push(ctx, conn, Vec::new()),
                        SockEvent::Eof { conn } => {
                            self.stack.as_mut().unwrap().close(ctx, conn);
                            self.conns.remove(&conn);
                        }
                        _ => {}
                    }
                }
                return;
            }
            Err(m) => m,
        };
        let r = flextoe_sim::cast::<KvRespond>(msg);
        self.push(ctx, r.conn, r.resp);
    }

    fn name(&self) -> String {
        "kv-server".to_string()
    }
}

// ---------------------------------------------------------------------------
// memtier-like client
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct MemtierConfig {
    pub server_ip: Ip4,
    pub server_port: u16,
    pub n_conns: u32,
    pub key_size: usize,
    pub value_size: usize,
    pub key_space: u32,
    /// GETs per SET (memtier's 1:10 inverted — Table 1 uses GET-heavy).
    pub gets_per_set: u32,
    pub warmup: Time,
    pub stop_after: Option<u64>,
}

impl Default for MemtierConfig {
    fn default() -> Self {
        MemtierConfig {
            server_ip: Ip4::host(2),
            server_port: 11211,
            n_conns: 8,
            key_size: 32,
            value_size: 32,
            key_space: 1000,
            gets_per_set: 9,
            warmup: Time::ZERO,
            stop_after: None,
        }
    }
}

struct MtConn {
    conn: u32,
    sent_at: Time,
    rx: Vec<u8>,
    expect_get: bool,
}

pub struct MemtierApp<S: StackApi> {
    cfg: MemtierConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    conns: Vec<MtConn>,
    by_id: FxHashMap<u32, usize>,
    op_counter: u64,
    pub latency: Histogram,
    pub completed: u64,
    pub measured: u64,
    pub first_measured_at: Time,
    pub last_measured_at: Time,
}

impl<S: StackApi + 'static> MemtierApp<S> {
    pub fn new(cfg: MemtierConfig, init: StackInit<S>) -> Self {
        MemtierApp {
            cfg,
            stack: None,
            init: Some(init),
            conns: Vec::new(),
            by_id: FxHashMap::default(),
            op_counter: 0,
            latency: Histogram::new(),
            completed: 0,
            measured: 0,
            first_measured_at: Time::ZERO,
            last_measured_at: Time::ZERO,
        }
    }

    pub fn throughput_ops(&self) -> f64 {
        if self.measured < 2 {
            return 0.0;
        }
        let span = self
            .last_measured_at
            .saturating_since(self.first_measured_at);
        if span == Duration::ZERO {
            return 0.0;
        }
        (self.measured - 1) as f64 / span.as_secs_f64()
    }

    fn key(&self, i: u32) -> Vec<u8> {
        let mut k = format!("key-{i:08}").into_bytes();
        k.resize(self.cfg.key_size, b'k');
        k
    }

    fn next_request(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        self.op_counter += 1;
        let is_set = self
            .op_counter
            .is_multiple_of(self.cfg.gets_per_set as u64 + 1);
        let keyid = ctx.rng.below(self.cfg.key_space as u64) as u32;
        let key = self.key(keyid);
        let req = if is_set {
            let mut v = vec![b'v'; self.cfg.value_size];
            v[0] = (keyid & 0xff) as u8;
            let mut r = Vec::with_capacity(64 + v.len());
            r.extend_from_slice(b"set ");
            r.extend_from_slice(&key);
            r.extend_from_slice(format!(" 0 0 {}\r\n", v.len()).as_bytes());
            r.extend_from_slice(&v);
            r.extend_from_slice(b"\r\n");
            r
        } else {
            let mut r = Vec::with_capacity(key.len() + 8);
            r.extend_from_slice(b"get ");
            r.extend_from_slice(&key);
            r.extend_from_slice(b"\r\n");
            r
        };
        let st = &mut self.conns[slot];
        st.sent_at = ctx.now();
        st.expect_get = !is_set;
        let stack = self.stack.as_mut().unwrap();
        let sent = stack.send(ctx, st.conn, &req);
        debug_assert_eq!(sent, req.len(), "KV request didn't fit socket buffer");
    }

    /// A response is complete when it ends with one of the terminators.
    fn response_complete(rx: &[u8]) -> bool {
        rx.ends_with(b"END\r\n") || rx.ends_with(b"STORED\r\n") || rx.ends_with(b"ERROR\r\n")
    }

    fn on_readable(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let Some(&slot) = self.by_id.get(&conn) else {
            return;
        };
        let stack = self.stack.as_mut().unwrap();
        let data = stack.recv(ctx, conn, u32::MAX);
        let st = &mut self.conns[slot];
        st.rx.extend_from_slice(&data);
        if Self::response_complete(&st.rx) {
            if st.expect_get {
                debug_assert!(
                    st.rx.starts_with(b"VALUE") || st.rx == b"END\r\n",
                    "bad GET response"
                );
            }
            st.rx.clear();
            self.completed += 1;
            if ctx.now() >= self.cfg.warmup {
                if self.measured == 0 {
                    self.first_measured_at = ctx.now();
                }
                self.last_measured_at = ctx.now();
                self.measured += 1;
                self.latency
                    .record(ctx.now().saturating_since(st.sent_at).as_ns());
                if let Some(limit) = self.cfg.stop_after {
                    if self.measured >= limit {
                        ctx.halt();
                        return;
                    }
                }
            }
            self.next_request(ctx, slot);
        }
    }
}

impl<S: StackApi + 'static> Node for MemtierApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().unwrap();
            let mut stack = init(ctx, ctx.self_id());
            for i in 0..self.cfg.n_conns {
                stack.connect(ctx, self.cfg.server_ip, self.cfg.server_port, i as u64);
            }
            self.stack = Some(stack);
            return;
        }
        if let Ok(events) = self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            for ev in events {
                match ev {
                    SockEvent::Connected { conn, .. } => {
                        let slot = self.conns.len();
                        self.conns.push(MtConn {
                            conn,
                            sent_at: ctx.now(),
                            rx: Vec::new(),
                            expect_get: false,
                        });
                        self.by_id.insert(conn, slot);
                        self.next_request(ctx, slot);
                    }
                    SockEvent::Readable { conn, .. } => self.on_readable(ctx, conn),
                    _ => {}
                }
            }
        }
    }

    fn name(&self) -> String {
        "memtier".to_string()
    }
}
