//! The stack-agnostic socket interface.
//!
//! "We use identical application binaries across all baselines" (§5) —
//! application nodes are generic over [`StackApi`], implemented by
//! FlexTOE's libTOE here and by the Linux/TAS/Chelsio models in
//! `flextoe-hoststack`.
//!
//! Each implementation also reports its **host-core overhead** per socket
//! operation — the Table 1 "NIC driver / TCP/IP stack / POSIX sockets"
//! cycles that execute on the application core for that stack. Application
//! nodes charge these against their core model, which is what makes the
//! Fig. 8 scalability and Table 1 breakdowns emerge.

use flextoe_control::AppReply;
use flextoe_core::stages::AppNotify;
use flextoe_core::NicHandle;
use flextoe_libtoe::LibToe;
pub use flextoe_libtoe::SockEvent;
use flextoe_sim::{try_cast, Ctx, Msg, NodeId};
use flextoe_wire::Ip4;

/// Socket-layer operations with distinct host costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackOp {
    /// `send()` of one request/response.
    Send,
    /// `recv()` of one request/response.
    Recv,
    /// One readiness-poll / epoll round.
    Poll,
}

pub trait StackApi {
    fn listen(&mut self, ctx: &mut Ctx<'_>, port: u16);
    fn connect(&mut self, ctx: &mut Ctx<'_>, ip: Ip4, port: u16, opaque: u64);
    /// Intercept stack-owned messages (control replies, wakeups); returns
    /// readiness events, or gives the message back if it isn't ours.
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> Result<Vec<SockEvent>, Msg>;
    fn send(&mut self, ctx: &mut Ctx<'_>, conn: u32, data: &[u8]) -> usize;
    fn send_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, len: u32) -> u32;
    fn recv(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> Vec<u8>;
    fn recv_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> u32;
    fn close(&mut self, ctx: &mut Ctx<'_>, conn: u32);
    /// Host-core cycles this stack spends per operation (driver + TCP/IP
    /// + sockets shares that run on the application core).
    fn host_overhead(&self, op: StackOp) -> u64;
    fn stack_name(&self) -> &'static str;
}

/// FlexTOE: all TCP processing is offloaded; only the POSIX-sockets layer
/// runs on the host (Table 1: 0.74 kc sockets, 0 driver, 0 stack, 0.04 kc
/// other per request⁠—split across send/recv/poll below).
pub struct FlexToeStack {
    lib: LibToe,
}

impl FlexToeStack {
    pub fn new(ctx: &mut Ctx<'_>, ctx_id: u16, nic: NicHandle, ctrl: NodeId, app: NodeId) -> Self {
        FlexToeStack {
            lib: LibToe::new(ctx, ctx_id, nic, ctrl, app),
        }
    }

    pub fn lib(&self) -> &LibToe {
        &self.lib
    }
}

impl StackApi for FlexToeStack {
    fn listen(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        self.lib.listen(ctx, port);
    }
    fn connect(&mut self, ctx: &mut Ctx<'_>, ip: Ip4, port: u16, opaque: u64) {
        self.lib.connect(ctx, ip, port, opaque);
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> Result<Vec<SockEvent>, Msg> {
        let msg = match try_cast::<AppReply>(msg) {
            Ok(reply) => return Ok(vec![self.lib.on_reply(*reply)]),
            Err(m) => m,
        };
        match try_cast::<AppNotify>(msg) {
            Ok(_) => {
                let _ = ctx;
                Ok(self.lib.poll())
            }
            Err(m) => Err(m),
        }
    }
    fn send(&mut self, ctx: &mut Ctx<'_>, conn: u32, data: &[u8]) -> usize {
        self.lib.send(ctx, conn, data)
    }
    fn send_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, len: u32) -> u32 {
        self.lib.send_bytes(ctx, conn, len)
    }
    fn recv(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> Vec<u8> {
        self.lib.recv(ctx, conn, max)
    }
    fn recv_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> u32 {
        self.lib.recv_bytes(ctx, conn, max)
    }
    fn close(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        self.lib.close(ctx, conn);
    }
    fn host_overhead(&self, op: StackOp) -> u64 {
        // Table 1 FlexTOE column: 0.74 kc sockets + 0.04 kc other per
        // request-response pair.
        match op {
            StackOp::Send => 280,
            StackOp::Recv => 280,
            StackOp::Poll => 220,
        }
    }
    fn stack_name(&self) -> &'static str {
        "flextoe"
    }
}

/// Forwarding impl so applications can be generic over `Box<dyn StackApi>`
/// (one binary, any stack — the experiment harness relies on this).
impl StackApi for Box<dyn StackApi> {
    fn listen(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        (**self).listen(ctx, port)
    }
    fn connect(&mut self, ctx: &mut Ctx<'_>, ip: Ip4, port: u16, opaque: u64) {
        (**self).connect(ctx, ip, port, opaque)
    }
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) -> Result<Vec<SockEvent>, Msg> {
        (**self).on_msg(ctx, msg)
    }
    fn send(&mut self, ctx: &mut Ctx<'_>, conn: u32, data: &[u8]) -> usize {
        (**self).send(ctx, conn, data)
    }
    fn send_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, len: u32) -> u32 {
        (**self).send_bytes(ctx, conn, len)
    }
    fn recv(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> Vec<u8> {
        (**self).recv(ctx, conn, max)
    }
    fn recv_bytes(&mut self, ctx: &mut Ctx<'_>, conn: u32, max: u32) -> u32 {
        (**self).recv_bytes(ctx, conn, max)
    }
    fn close(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        (**self).close(ctx, conn)
    }
    fn host_overhead(&self, op: StackOp) -> u64 {
        (**self).host_overhead(op)
    }
    fn stack_name(&self) -> &'static str {
        (**self).stack_name()
    }
}
