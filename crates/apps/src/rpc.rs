//! RPC workloads: echo/sink servers and closed/open-loop clients — the
//! machinery behind Figures 9–16 and Tables 2–4.

use std::collections::VecDeque;

use flextoe_nfp::{Cost, FpcTimer};
use flextoe_sim::{Ctx, Duration, FxHashMap, Histogram, Msg, Node, NodeId, Tick, Time};
use flextoe_wire::Ip4;

use crate::stack::{SockEvent, StackApi, StackOp};

/// Deferred stack construction (stack setup needs a `Ctx`).
pub type StackInit<S> = Box<dyn FnOnce(&mut Ctx<'_>, NodeId) -> S>;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    pub port: u16,
    /// Request size; a request is complete once this many bytes arrived.
    pub msg_size: u32,
    /// Response size (== msg_size for echo).
    pub resp_size: u32,
    /// Artificial application processing per RPC (Fig. 10's 250/1,000
    /// cycles), on the host clock.
    pub app_cycles: u64,
    /// Byte-exact echo (copies data; requires resp_size == msg_size).
    pub echo_data: bool,
    pub host_clock: flextoe_sim::Clock,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 7777,
            msg_size: 64,
            resp_size: 64,
            app_cycles: 0,
            echo_data: false,
            host_clock: flextoe_sim::clocks::HOST_2GHZ,
        }
    }
}

struct ServerConn {
    /// Request bytes accumulated but not yet a complete request.
    pending_in: u32,
    /// Echo payload queue (only with echo_data).
    data: VecDeque<u8>,
    /// Response bytes still to transmit (socket buffer was full).
    backlog: u32,
}

/// A response is ready to transmit (application processing finished).
struct Respond {
    conn: u32,
}
flextoe_sim::custom_msg!(Respond);

/// An RPC server: accepts connections, consumes fixed-size requests,
/// responds after simulated application processing.
pub struct RpcServerApp<S: StackApi> {
    cfg: ServerConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    core: FpcTimer,
    conns: FxHashMap<u32, ServerConn>,
    pub requests: u64,
    pub accepted: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

impl<S: StackApi + 'static> RpcServerApp<S> {
    pub fn new(cfg: ServerConfig, init: StackInit<S>) -> Self {
        RpcServerApp {
            core: FpcTimer::new(cfg.host_clock, 1),
            cfg,
            stack: None,
            init: Some(init),
            conns: FxHashMap::default(),
            requests: 0,
            accepted: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// Host-core utilization so far (busy cycles as time).
    pub fn core_busy(&self) -> Duration {
        self.core.busy
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<SockEvent>) {
        for ev in events {
            match ev {
                SockEvent::Accepted { conn, .. } => {
                    self.accepted += 1;
                    self.conns.insert(
                        conn,
                        ServerConn {
                            pending_in: 0,
                            data: VecDeque::new(),
                            backlog: 0,
                        },
                    );
                }
                SockEvent::Readable { conn, .. } => self.drain_rx(ctx, conn),
                SockEvent::Writable { conn, .. } => self.push_response(ctx, conn, 0),
                SockEvent::Eof { conn } => {
                    if let Some(stack) = self.stack.as_mut() {
                        stack.close(ctx, conn);
                    }
                    self.conns.remove(&conn);
                }
                _ => {}
            }
        }
    }

    fn drain_rx(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let stack = self.stack.as_mut().unwrap();
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        if self.cfg.echo_data {
            let data = stack.recv(ctx, conn, u32::MAX);
            self.bytes_in += data.len() as u64;
            st.pending_in += data.len() as u32;
            st.data.extend(data);
        } else {
            let n = stack.recv_bytes(ctx, conn, u32::MAX);
            self.bytes_in += n as u64;
            st.pending_in += n;
        }
        // process complete requests through the application core
        while st.pending_in >= self.cfg.msg_size {
            st.pending_in -= self.cfg.msg_size;
            self.requests += 1;
            let cycles = self.cfg.app_cycles
                + stack.host_overhead(StackOp::Recv)
                + stack.host_overhead(StackOp::Send)
                + stack.host_overhead(StackOp::Poll);
            let done = self.core.execute(ctx.now(), Cost::new(cycles, 0));
            ctx.wake(done.saturating_since(ctx.now()), Respond { conn });
        }
    }

    /// Transmit `extra` fresh response bytes plus any backlog.
    fn push_response(&mut self, ctx: &mut Ctx<'_>, conn: u32, extra: u32) {
        let stack = self.stack.as_mut().unwrap();
        let Some(st) = self.conns.get_mut(&conn) else {
            return;
        };
        st.backlog += extra;
        while st.backlog > 0 {
            let sent = if self.cfg.echo_data {
                let n = st.backlog.min(st.data.len() as u32);
                if n == 0 {
                    break;
                }
                let chunk: Vec<u8> = st.data.drain(..n as usize).collect();
                let sent = stack.send(ctx, conn, &chunk) as u32;
                // un-drained remainder goes back to the front
                for b in chunk[sent as usize..].iter().rev() {
                    st.data.push_front(*b);
                }
                sent
            } else {
                stack.send_bytes(ctx, conn, st.backlog)
            };
            if sent == 0 {
                break; // socket buffer full: resume on Writable
            }
            st.backlog -= sent;
            self.bytes_out += sent as u64;
        }
    }
}

impl<S: StackApi + 'static> Node for RpcServerApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().expect("first message starts the app");
            let mut stack = init(ctx, ctx.self_id());
            stack.listen(ctx, self.cfg.port);
            self.stack = Some(stack);
            return;
        }
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                self.handle_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        let r = flextoe_sim::cast::<Respond>(msg);
        let resp = self.cfg.resp_size;
        self.push_response(ctx, r.conn, resp);
    }

    fn name(&self) -> String {
        "rpc-server".to_string()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Each connection keeps `pipeline` requests in flight.
    Closed { pipeline: u32 },
    /// Poisson arrivals at `rate_rps` across all connections.
    Open { rate_rps: f64 },
}

#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    pub server_ip: Ip4,
    pub server_port: u16,
    pub n_conns: u32,
    pub msg_size: u32,
    pub resp_size: u32,
    pub mode: LoadMode,
    /// Responses completed before this instant are not recorded.
    pub warmup: Time,
    /// Stop the simulation after this many measured responses (tests/
    /// fixed-work experiments). `None` = run until the deadline.
    pub stop_after: Option<u64>,
    /// Stagger connection establishment to avoid a SYN burst.
    pub connect_spacing: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            server_ip: Ip4::host(2),
            server_port: 7777,
            n_conns: 1,
            msg_size: 64,
            resp_size: 64,
            mode: LoadMode::Closed { pipeline: 1 },
            warmup: Time::ZERO,
            stop_after: None,
            connect_spacing: Duration::from_us(5),
        }
    }
}

struct ClientConn {
    conn: u32,
    /// Measured response bytes on this connection (fairness experiments).
    measured_bytes: u64,
    /// Send timestamps of in-flight requests (responses return in order).
    outstanding: VecDeque<Time>,
    /// Response bytes received toward the head-of-line response.
    rx_pending: u32,
    /// Request bytes not yet accepted by the socket buffer.
    tx_backlog: u32,
}

struct NextArrival;
flextoe_sim::custom_msg!(NextArrival);

pub struct RpcClientApp<S: StackApi> {
    cfg: ClientConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    conns: Vec<ClientConn>,
    by_id: FxHashMap<u32, usize>,
    rr: usize,
    started_conns: u32,
    pub connected: u32,
    pub failed: u32,
    /// Latency of measured responses, in nanoseconds.
    pub latency: Histogram,
    pub completed: u64,
    pub measured: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub first_measured_at: Time,
    pub last_measured_at: Time,
}

impl<S: StackApi + 'static> RpcClientApp<S> {
    pub fn new(cfg: ClientConfig, init: StackInit<S>) -> Self {
        RpcClientApp {
            cfg,
            stack: None,
            init: Some(init),
            conns: Vec::new(),
            by_id: FxHashMap::default(),
            rr: 0,
            started_conns: 0,
            connected: 0,
            failed: 0,
            latency: Histogram::new(),
            completed: 0,
            measured: 0,
            bytes_in: 0,
            bytes_out: 0,
            first_measured_at: Time::ZERO,
            last_measured_at: Time::ZERO,
        }
    }

    /// Measured throughput in responses/second over the measurement window.
    pub fn throughput_rps(&self) -> f64 {
        if self.measured < 2 {
            return 0.0;
        }
        let span = self
            .last_measured_at
            .saturating_since(self.first_measured_at);
        if span == Duration::ZERO {
            return 0.0;
        }
        (self.measured - 1) as f64 / span.as_secs_f64()
    }

    /// Measured goodput (response bytes) in bits/second.
    pub fn goodput_bps(&self) -> f64 {
        self.throughput_rps() * self.cfg.resp_size as f64 * 8.0
    }

    /// Per-connection measured response bytes (Fig. 16 fairness).
    pub fn per_conn_bytes(&self) -> Vec<u64> {
        self.conns.iter().map(|c| c.measured_bytes).collect()
    }

    fn connect_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.started_conns >= self.cfg.n_conns {
            return;
        }
        let idx = self.started_conns as u64;
        self.started_conns += 1;
        let stack = self.stack.as_mut().unwrap();
        stack.connect(ctx, self.cfg.server_ip, self.cfg.server_port, idx);
        if self.started_conns < self.cfg.n_conns {
            ctx.wake(self.cfg.connect_spacing, Tick);
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let st = &mut self.conns[slot];
        st.outstanding.push_back(ctx.now());
        st.tx_backlog += self.cfg.msg_size;
        self.drain_tx(ctx, slot);
    }

    fn drain_tx(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let st = &mut self.conns[slot];
        if st.tx_backlog == 0 {
            return;
        }
        let stack = self.stack.as_mut().unwrap();
        let sent = stack.send_bytes(ctx, st.conn, st.tx_backlog);
        st.tx_backlog -= sent;
        self.bytes_out += sent as u64;
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let st = &mut self.conns[slot];
        let sent_at = st.outstanding.pop_front().unwrap_or(ctx.now());
        if ctx.now() >= self.cfg.warmup {
            st.measured_bytes += self.cfg.resp_size as u64;
        }
        self.completed += 1;
        if ctx.now() >= self.cfg.warmup {
            if self.measured == 0 {
                self.first_measured_at = ctx.now();
            }
            self.last_measured_at = ctx.now();
            self.measured += 1;
            self.latency
                .record(ctx.now().saturating_since(sent_at).as_ns());
            if let Some(limit) = self.cfg.stop_after {
                if self.measured >= limit {
                    ctx.halt();
                    return;
                }
            }
        }
        if let LoadMode::Closed { .. } = self.cfg.mode {
            self.issue(ctx, slot);
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<SockEvent>) {
        for ev in events {
            match ev {
                SockEvent::Connected { conn, .. } => {
                    self.connected += 1;
                    let slot = self.conns.len();
                    self.conns.push(ClientConn {
                        conn,
                        measured_bytes: 0,
                        outstanding: VecDeque::new(),
                        rx_pending: 0,
                        tx_backlog: 0,
                    });
                    self.by_id.insert(conn, slot);
                    match self.cfg.mode {
                        LoadMode::Closed { pipeline } => {
                            for _ in 0..pipeline {
                                self.issue(ctx, slot);
                            }
                        }
                        LoadMode::Open { rate_rps } => {
                            // one arrival process, started by the first conn
                            if self.connected == 1 {
                                let gap = ctx.rng.exp(1.0 / rate_rps);
                                ctx.wake(Duration::from_secs_f64(gap), NextArrival);
                            }
                        }
                    }
                }
                SockEvent::ConnectFailed { .. } => {
                    self.failed += 1;
                }
                SockEvent::Readable { conn, .. } => {
                    let Some(&slot) = self.by_id.get(&conn) else {
                        continue;
                    };
                    let stack = self.stack.as_mut().unwrap();
                    let n = stack.recv_bytes(ctx, conn, u32::MAX);
                    self.bytes_in += n as u64;
                    self.conns[slot].rx_pending += n;
                    while self.conns[slot].rx_pending >= self.cfg.resp_size
                        && !self.conns[slot].outstanding.is_empty()
                        && self.cfg.stop_after.is_none_or(|l| self.measured < l)
                    {
                        self.conns[slot].rx_pending -= self.cfg.resp_size;
                        self.on_response(ctx, slot);
                    }
                }
                SockEvent::Writable { conn, .. } => {
                    if let Some(&slot) = self.by_id.get(&conn) {
                        self.drain_tx(ctx, slot);
                    }
                }
                SockEvent::Eof { .. } | SockEvent::Aborted { .. } | SockEvent::Accepted { .. } => {}
            }
        }
    }
}

impl<S: StackApi + 'static> Node for RpcClientApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().expect("first message starts the app");
            let stack = init(ctx, ctx.self_id());
            self.stack = Some(stack);
            self.connect_next(ctx);
            return;
        }
        // Tick is a typed variant: match it before handing the message to
        // the stack, avoiding the repack allocation of a failed try_cast
        let msg = match msg {
            Msg::Tick => {
                self.connect_next(ctx);
                return;
            }
            m => m,
        };
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                self.handle_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        let _ = flextoe_sim::cast::<NextArrival>(msg);
        if let LoadMode::Open { rate_rps } = self.cfg.mode {
            if !self.conns.is_empty() {
                let slot = self.rr % self.conns.len();
                self.rr += 1;
                self.issue(ctx, slot);
            }
            let gap = ctx.rng.exp(1.0 / rate_rps);
            ctx.wake(Duration::from_secs_f64(gap), NextArrival);
        }
    }

    fn name(&self) -> String {
        "rpc-client".to_string()
    }
}
