//! Reconnecting session client: long-lived closed-loop sessions that
//! survive faults. Each session keeps exactly one framed request in
//! flight; when its connection dies — peer reset, control-plane abort
//! (RTO give-up), or connect failure — the session backs off with seeded
//! exponential backoff + jitter and reconnects, resuming where it left
//! off. A leaf-switch kill therefore produces a *reconnection storm*
//! when the switch heals: every session on that leaf retries on its own
//! jittered schedule.
//!
//! Speaks the same framed protocol as [`crate::openloop`]
//! (16-byte header, descriptor-only bulk), so it targets
//! [`crate::FramedServerApp`] unchanged.

use std::collections::VecDeque;

use flextoe_sim::{Ctx, Duration, FxHashMap, Histogram, Msg, Node, Time};
use flextoe_wire::Ip4;

use crate::openloop::{CloseAll, FRAME_HDR};
use crate::rpc::StackInit;
use crate::stack::{SockEvent, StackApi};

const MAGIC: u32 = 0x4652_5043; // "FRPC" — shared with openloop

#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    pub server_ip: Ip4,
    pub server_port: u16,
    pub n_sessions: u32,
    /// Total request size including the 16-byte header (clamped up).
    pub req_size: u32,
    pub resp_size: u32,
    /// Gap between receiving a response and issuing the next request.
    pub think: Duration,
    /// Reconnect backoff: `base × 2^(attempt-1)` (capped at `backoff_cap`),
    /// ±25% seeded jitter.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Stagger initial connects to avoid a SYN burst.
    pub connect_spacing: Duration,
    /// Responses completed before this instant are not recorded.
    pub warmup: Time,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            server_ip: Ip4::host(2),
            server_port: 7979,
            n_sessions: 4,
            req_size: 64,
            resp_size: 256,
            think: Duration::from_us(10),
            backoff_base: Duration::from_us(200),
            backoff_cap: Duration::from_ms(5),
            connect_spacing: Duration::from_us(1),
            warmup: Time::ZERO,
        }
    }
}

enum SessState {
    /// `connect()` posted, waiting for Connected/ConnectFailed.
    Connecting,
    Live {
        conn: u32,
    },
    /// Waiting out a backoff timer before reconnecting.
    BackedOff,
    /// CloseAll received: the session is done for good.
    Parked,
}

/// Unsent request bytes: literal header, then descriptor-only bulk.
enum TxChunk {
    Lit(Vec<u8>, usize),
    Pad(u32),
}

struct Session {
    state: SessState,
    /// Invalidates stale timers across state transitions.
    epoch: u32,
    /// Consecutive failed/aborted attempts since the last good response
    /// (reset on response, not on connect, so a flapping path keeps
    /// growing its backoff).
    attempt: u32,
    ever_connected: bool,
    /// (issued-at, expected response bytes) — at most one (closed loop).
    outstanding: Option<(Time, u32)>,
    rx_pending: u32,
    tx: VecDeque<TxChunk>,
}

/// Per-session timer (reconnect backoff or think time); `epoch` must
/// match the session's current epoch or the wake is stale and ignored.
#[derive(Clone, Copy)]
struct SessWake {
    session: u32,
    epoch: u32,
}
flextoe_sim::custom_msg!(SessWake);

/// Closed-loop framed-RPC client with automatic reconnect.
pub struct SessionClientApp<S: StackApi> {
    cfg: SessionConfig,
    stack: Option<S>,
    init: Option<StackInit<S>>,
    sessions: Vec<Session>,
    by_conn: FxHashMap<u32, usize>,
    started: u32,
    seq: u32,
    closing: bool,
    pub issued: u64,
    pub completed: u64,
    pub measured: u64,
    /// Requests written off because their connection died under them.
    pub dead_requests: u64,
    /// Connections the control plane aborted (RTO give-up).
    pub aborted_conns: u64,
    /// Connections the peer closed/reset (EOF while we expected more).
    pub peer_closed: u64,
    /// Successful re-establishments (not counting each session's first).
    pub reconnects: u64,
    pub connect_failures: u64,
    pub bytes_out: u64,
    pub bytes_in: u64,
    /// Issue→completion latency of measured responses, nanoseconds.
    pub latency: Histogram,
    pub first_measured_at: Time,
    pub last_measured_at: Time,
}

impl<S: StackApi + 'static> SessionClientApp<S> {
    pub fn new(cfg: SessionConfig, init: StackInit<S>) -> Self {
        SessionClientApp {
            cfg,
            stack: None,
            init: Some(init),
            sessions: Vec::new(),
            by_conn: FxHashMap::default(),
            started: 0,
            seq: 0,
            closing: false,
            issued: 0,
            completed: 0,
            measured: 0,
            dead_requests: 0,
            aborted_conns: 0,
            peer_closed: 0,
            reconnects: 0,
            connect_failures: 0,
            bytes_out: 0,
            bytes_in: 0,
            latency: Histogram::new(),
            first_measured_at: Time::ZERO,
            last_measured_at: Time::ZERO,
        }
    }

    /// Requests issued but not yet answered or written off.
    pub fn in_flight(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.outstanding.is_some())
            .count()
    }

    /// Sessions currently holding a live connection.
    pub fn live_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| matches!(s.state, SessState::Live { .. }))
            .count()
    }

    fn connect_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.started >= self.cfg.n_sessions || self.closing {
            return;
        }
        let idx = self.started as u64;
        self.started += 1;
        self.sessions.push(Session {
            state: SessState::Connecting,
            epoch: 0,
            attempt: 1,
            ever_connected: false,
            outstanding: None,
            rx_pending: 0,
            tx: VecDeque::new(),
        });
        let stack = self.stack.as_mut().unwrap();
        stack.connect(ctx, self.cfg.server_ip, self.cfg.server_port, idx);
        if self.started < self.cfg.n_sessions {
            ctx.wake(self.cfg.connect_spacing, flextoe_sim::Tick);
        }
    }

    /// Seeded exponential backoff with ±25% jitter for attempt `n` (1-based).
    fn backoff(&self, ctx: &mut Ctx<'_>, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base.as_ns().max(1);
        let d = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(6))
            .min(self.cfg.backoff_cap.as_ns().max(1));
        Duration::from_ns(ctx.rng.range(d - d / 4, d + d / 4))
    }

    /// The session's connection died; write off its request and schedule a
    /// jittered reconnect.
    fn back_off(&mut self, ctx: &mut Ctx<'_>, session: usize) {
        let s = &mut self.sessions[session];
        if let SessState::Live { conn } = s.state {
            self.by_conn.remove(&conn);
        }
        if s.outstanding.take().is_some() {
            self.dead_requests += 1;
        }
        s.tx.clear();
        s.rx_pending = 0;
        s.epoch = s.epoch.wrapping_add(1);
        if self.closing {
            s.state = SessState::Parked;
            return;
        }
        s.state = SessState::BackedOff;
        s.attempt += 1;
        let (epoch, attempt) = (s.epoch, s.attempt);
        let delay = self.backoff(ctx, attempt);
        ctx.wake(
            delay,
            SessWake {
                session: session as u32,
                epoch,
            },
        );
    }

    /// Issue the session's next request (closed loop: exactly one out).
    fn issue(&mut self, ctx: &mut Ctx<'_>, session: usize) {
        let req = self.cfg.req_size.max(FRAME_HDR);
        let resp = self.cfg.resp_size.max(1);
        self.seq = self.seq.wrapping_add(1);
        let mut hdr = Vec::with_capacity(FRAME_HDR as usize);
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&(req - FRAME_HDR).to_le_bytes());
        hdr.extend_from_slice(&resp.to_le_bytes());
        hdr.extend_from_slice(&self.seq.to_le_bytes());
        let s = &mut self.sessions[session];
        debug_assert!(s.outstanding.is_none(), "closed loop: one request out");
        s.outstanding = Some((ctx.now(), resp));
        s.tx.push_back(TxChunk::Lit(hdr, 0));
        if req > FRAME_HDR {
            s.tx.push_back(TxChunk::Pad(req - FRAME_HDR));
        }
        self.issued += 1;
        self.drain_tx(ctx, session);
    }

    fn drain_tx(&mut self, ctx: &mut Ctx<'_>, session: usize) {
        let s = &mut self.sessions[session];
        let SessState::Live { conn } = s.state else {
            return;
        };
        let stack = self.stack.as_mut().unwrap();
        while let Some(chunk) = s.tx.front_mut() {
            match chunk {
                TxChunk::Lit(data, off) => {
                    let sent = stack.send(ctx, conn, &data[*off..]);
                    *off += sent;
                    self.bytes_out += sent as u64;
                    if *off < data.len() {
                        return; // buffer full: resume on Writable
                    }
                }
                TxChunk::Pad(n) => {
                    let sent = stack.send_bytes(ctx, conn, *n);
                    *n -= sent;
                    self.bytes_out += sent as u64;
                    if *n > 0 {
                        return;
                    }
                }
            }
            s.tx.pop_front();
        }
    }

    fn on_readable(&mut self, ctx: &mut Ctx<'_>, conn: u32) {
        let Some(&session) = self.by_conn.get(&conn) else {
            return;
        };
        let stack = self.stack.as_mut().unwrap();
        let n = stack.recv_bytes(ctx, conn, u32::MAX);
        self.bytes_in += n as u64;
        let s = &mut self.sessions[session];
        s.rx_pending += n;
        let Some((sent_at, resp)) = s.outstanding else {
            return;
        };
        if s.rx_pending < resp {
            return;
        }
        s.rx_pending -= resp;
        s.outstanding = None;
        s.attempt = 0; // good response: fresh backoff schedule next failure
        self.completed += 1;
        if ctx.now() >= self.cfg.warmup {
            if self.measured == 0 {
                self.first_measured_at = ctx.now();
            }
            self.last_measured_at = ctx.now();
            self.measured += 1;
            self.latency
                .record(ctx.now().saturating_since(sent_at).as_ns());
        }
        if self.closing {
            return;
        }
        // think, then issue the next request
        let s = &mut self.sessions[session];
        s.epoch = s.epoch.wrapping_add(1);
        let epoch = s.epoch;
        ctx.wake(
            self.cfg.think,
            SessWake {
                session: session as u32,
                epoch,
            },
        );
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_>, w: SessWake) {
        let session = w.session as usize;
        let s = &mut self.sessions[session];
        if s.epoch != w.epoch || self.closing {
            return; // stale timer (state changed since it was armed)
        }
        match s.state {
            SessState::BackedOff => {
                s.state = SessState::Connecting;
                let stack = self.stack.as_mut().unwrap();
                stack.connect(
                    ctx,
                    self.cfg.server_ip,
                    self.cfg.server_port,
                    session as u64,
                );
            }
            SessState::Live { .. } => {
                if s.outstanding.is_none() {
                    self.issue(ctx, session);
                }
            }
            SessState::Connecting | SessState::Parked => {}
        }
    }

    fn handle_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<SockEvent>) {
        for ev in events {
            match ev {
                SockEvent::Connected { conn, opaque } => {
                    let session = opaque as usize;
                    let s = &mut self.sessions[session];
                    if self.closing {
                        s.state = SessState::Parked;
                        self.stack.as_mut().unwrap().close(ctx, conn);
                        continue;
                    }
                    if s.ever_connected {
                        self.reconnects += 1;
                    }
                    s.ever_connected = true;
                    s.state = SessState::Live { conn };
                    s.epoch = s.epoch.wrapping_add(1);
                    self.by_conn.insert(conn, session);
                    self.issue(ctx, session);
                }
                SockEvent::ConnectFailed { opaque } => {
                    self.connect_failures += 1;
                    self.back_off(ctx, opaque as usize);
                }
                SockEvent::Readable { conn, .. } => self.on_readable(ctx, conn),
                SockEvent::Writable { conn, .. } => {
                    if let Some(&session) = self.by_conn.get(&conn) {
                        self.drain_tx(ctx, session);
                    }
                }
                SockEvent::Eof { conn } => {
                    if let Some(&session) = self.by_conn.get(&conn) {
                        self.peer_closed += 1;
                        if let Some(stack) = self.stack.as_mut() {
                            stack.close(ctx, conn);
                        }
                        self.back_off(ctx, session);
                    }
                }
                SockEvent::Aborted { conn } => {
                    if let Some(&session) = self.by_conn.get(&conn) {
                        self.aborted_conns += 1;
                        // no close: the flow is already torn down NIC-side
                        self.back_off(ctx, session);
                    }
                }
                SockEvent::Accepted { .. } => {}
            }
        }
    }
}

impl<S: StackApi + 'static> Node for SessionClientApp<S> {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.stack.is_none() {
            let init = self.init.take().expect("first message starts the app");
            let stack = init(ctx, ctx.self_id());
            self.stack = Some(stack);
            self.connect_next(ctx);
            return;
        }
        let msg = match msg {
            Msg::Tick => {
                self.connect_next(ctx);
                return;
            }
            m => m,
        };
        let msg = match self.stack.as_mut().unwrap().on_msg(ctx, msg) {
            Ok(events) => {
                self.handle_events(ctx, events);
                return;
            }
            Err(m) => m,
        };
        let msg = match flextoe_sim::try_cast::<CloseAll>(msg) {
            Ok(_) => {
                self.closing = true;
                let mut to_close = Vec::new();
                for s in &mut self.sessions {
                    if let SessState::Live { conn } = s.state {
                        to_close.push(conn);
                        self.by_conn.remove(&conn);
                    }
                    s.state = SessState::Parked;
                    if s.outstanding.take().is_some() {
                        self.dead_requests += 1;
                    }
                    s.tx.clear();
                }
                let stack = self.stack.as_mut().unwrap();
                for conn in to_close {
                    stack.close(ctx, conn);
                }
                return;
            }
            Err(m) => m,
        };
        let w = flextoe_sim::cast::<SessWake>(msg);
        self.on_wake(ctx, *w);
    }

    fn name(&self) -> String {
        "session-client".to_string()
    }
}
