//! # flextoe-apps — application workloads
//!
//! The memcached-like KV store, memtier-like generator, and RPC echo
//! machinery the paper's evaluation runs, written once against the
//! stack-agnostic [`stack::StackApi`] so "identical application binaries"
//! run on FlexTOE and every baseline stack (§5).

pub mod kv;
pub mod openloop;
pub mod rpc;
pub mod session;
pub mod stack;

pub use kv::{KvServerApp, KvServerConfig, MemtierApp, MemtierConfig, KV_APP_CYCLES};
pub use openloop::{
    CloseAll, FramedServerApp, FramedServerConfig, OpenLoopClientApp, OpenLoopConfig, SizeDist,
    FRAME_HDR,
};
pub use rpc::{ClientConfig, LoadMode, RpcClientApp, RpcServerApp, ServerConfig, StackInit};
pub use session::{SessionClientApp, SessionConfig};
pub use stack::{FlexToeStack, SockEvent, StackApi, StackOp};
