//! Datapath fold programs — the CCP measurement primitive.
//!
//! CCP (and portus, its userspace agent) splits congestion control into an
//! in-datapath *fold function* that aggregates per-ACK measurements and an
//! out-of-band algorithm that consumes the folded summaries. This module
//! provides the fold side for the FlexTOE data-path: a tiny instruction
//! IR (`FoldProg`) over the fields of an ACK event and a per-flow state
//! record, compiled to eBPF and executed on the `flextoe-ebpf` VM — the
//! same substrate the XDP extension modules run on. The built-in fold
//! (the portus `install_fold` default: accumulate acked/ecn/retx bytes,
//! track the latest RTT, flag urgency on loss) additionally has a native
//! Rust fast path so the common case never pays VM dispatch.
//!
//! Buffer layout handed to the VM (all fields little-endian `u32`, the
//! VM's native load order): the ACK event record first, the fold state
//! directly after it. The program reads event fields, read-modify-writes
//! state fields in place, and returns the state's `urgent` word.

use flextoe_ebpf::insn::{
    Insn, ProgBuilder, XdpAction, BPF_ADD, BPF_AND, BPF_DW, BPF_JGE, BPF_JGT, BPF_JLE, BPF_OR,
    BPF_RSH, BPF_SUB, BPF_W, R0, R1, R2, R3, R6, R7, R8,
};
use flextoe_ebpf::{MD_DATA, MD_DATA_END};

/// One field of the per-ACK event record (offsets into the VM buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventField {
    /// Bytes newly acknowledged by this segment.
    AckedBytes,
    /// ECN-CE-marked payload bytes carried by this segment.
    EcnBytes,
    /// Smoothed RTT estimate, microseconds (§3.1.3 "Stamp").
    RttUs,
    /// 1 if this ACK triggered a fast retransmit.
    FastRetx,
    /// Current time, microseconds.
    NowUs,
}

impl EventField {
    fn off(self) -> i16 {
        match self {
            EventField::AckedBytes => 0,
            EventField::EcnBytes => 4,
            EventField::RttUs => 8,
            EventField::FastRetx => 12,
            EventField::NowUs => 16,
        }
    }
}

/// Size of the event record at the front of the fold buffer.
pub const EVENT_SIZE: usize = 20;

/// Number of `u32` fold-state registers per flow.
pub const N_STATE: usize = 9;

/// Total VM buffer: event record + fold state.
pub const FOLD_BUF_SIZE: usize = EVENT_SIZE + 4 * N_STATE;

/// One register of the per-flow fold state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StateField {
    /// Accumulated acked bytes since the last report.
    Acked,
    /// Accumulated ECN-marked bytes since the last report.
    Ecn,
    /// Accumulated fast retransmits since the last report.
    Fretx,
    /// Latest RTT estimate (overwritten per event).
    Rtt,
    /// Non-zero ⇒ seal and send the report immediately (loss, RTO).
    Urgent,
    /// Scratch registers for custom folds (EWMAs, maxima, …): four
    /// slots, flow-persistent (not reset per report window), surfaced
    /// to the control plane in `FlowReport::user`.
    User(u8),
}

/// Number of `User` scratch registers.
pub const N_USER: usize = 4;

impl StateField {
    /// Index into the state array. Panics on an out-of-range `User`
    /// index — aliasing two logical registers would corrupt folds
    /// silently.
    pub fn idx(self) -> usize {
        match self {
            StateField::Acked => 0,
            StateField::Ecn => 1,
            StateField::Fretx => 2,
            StateField::Rtt => 3,
            StateField::Urgent => 4,
            StateField::User(n) => {
                assert!(
                    (n as usize) < N_USER,
                    "User({n}) out of range: {N_USER} scratch registers"
                );
                5 + n as usize
            }
        }
    }

    fn off(self) -> i16 {
        (EVENT_SIZE + 4 * self.idx()) as i16
    }
}

/// An operand of a fold bind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    Const(u32),
    Event(EventField),
    State(StateField),
}

/// The fold ALU: every bind is `dst = dst <op> arg` (`Set`: `dst = arg`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    Set,
    Add,
    Sub,
    Max,
    Min,
    Or,
    And,
    /// Logical shift right (EWMA building block — the NFP cannot divide).
    Shr,
}

/// One fold instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bind {
    pub dst: StateField,
    pub op: FoldOp,
    pub arg: Operand,
}

/// A fold program: initial state plus the per-event bind sequence —
/// the `(def …)` / `(bind …)` pair of a portus fold, as an IR.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FoldProg {
    pub init: [u32; N_STATE],
    pub binds: Vec<Bind>,
}

/// Which fold a control plane installs for its flows.
#[derive(Clone, Debug, Default)]
pub enum FoldSpec {
    /// The built-in fold on its native fast path.
    #[default]
    Builtin,
    /// A custom fold program, compiled to eBPF at install time.
    Program(FoldProg),
}

impl FoldSpec {
    /// Compile once for installation into the measurement layer: `None`
    /// selects the native fast path, `Some` the VM with this program.
    pub fn compile_for_install(&self) -> Option<(std::rc::Rc<Vec<Insn>>, [u32; N_STATE])> {
        match self {
            FoldSpec::Builtin => None,
            FoldSpec::Program(p) => Some((std::rc::Rc::new(compile(p)), p.init)),
        }
    }
}

/// The per-ACK measurement event the post-processor feeds into the fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AckEvent {
    pub acked_bytes: u32,
    pub ecn_bytes: u32,
    pub rtt_us: u32,
    pub fast_retx: bool,
    pub now_us: u32,
}

impl AckEvent {
    fn field(&self, f: EventField) -> u32 {
        match f {
            EventField::AckedBytes => self.acked_bytes,
            EventField::EcnBytes => self.ecn_bytes,
            EventField::RttUs => self.rtt_us,
            EventField::FastRetx => self.fast_retx as u32,
            EventField::NowUs => self.now_us,
        }
    }

    /// Serialize into the front of a fold buffer (VM layout).
    pub fn encode_into(&self, buf: &mut [u8]) {
        for f in [
            EventField::AckedBytes,
            EventField::EcnBytes,
            EventField::RttUs,
            EventField::FastRetx,
            EventField::NowUs,
        ] {
            let o = f.off() as usize;
            buf[o..o + 4].copy_from_slice(&self.field(f).to_le_bytes());
        }
    }
}

impl FoldProg {
    /// The built-in fold: the aggregation every stock algorithm consumes.
    /// Equivalent to the portus default measurement fold.
    pub fn builtin() -> FoldProg {
        use EventField as E;
        use FoldOp::*;
        use StateField as S;
        FoldProg {
            init: [0; N_STATE],
            binds: vec![
                Bind {
                    dst: S::Acked,
                    op: Add,
                    arg: Operand::Event(E::AckedBytes),
                },
                Bind {
                    dst: S::Ecn,
                    op: Add,
                    arg: Operand::Event(E::EcnBytes),
                },
                Bind {
                    dst: S::Fretx,
                    op: Add,
                    arg: Operand::Event(E::FastRetx),
                },
                Bind {
                    dst: S::Rtt,
                    op: Set,
                    arg: Operand::Event(E::RttUs),
                },
                Bind {
                    dst: S::Urgent,
                    op: Or,
                    arg: Operand::Event(E::FastRetx),
                },
            ],
        }
    }

    /// Reference interpreter (used by the differential tests; custom folds
    /// execute on the eBPF VM in the data-path).
    pub fn step(&self, state: &mut [u32; N_STATE], ev: &AckEvent) {
        for b in &self.binds {
            let arg = match b.arg {
                Operand::Const(c) => c,
                Operand::Event(f) => ev.field(f),
                Operand::State(s) => state[s.idx()],
            };
            let d = &mut state[b.dst.idx()];
            *d = match b.op {
                FoldOp::Set => arg,
                FoldOp::Add => d.wrapping_add(arg),
                FoldOp::Sub => d.wrapping_sub(arg),
                FoldOp::Max => (*d).max(arg),
                FoldOp::Min => (*d).min(arg),
                FoldOp::Or => *d | arg,
                FoldOp::And => *d & arg,
                FoldOp::Shr => d.wrapping_shr(arg),
            };
        }
    }
}

/// The native fast path for [`FoldProg::builtin`] — must stay bind-exact
/// with it (proven by the differential test below).
pub fn builtin_step(state: &mut [u32; N_STATE], ev: &AckEvent) {
    state[StateField::Acked.idx()] = state[StateField::Acked.idx()].wrapping_add(ev.acked_bytes);
    state[StateField::Ecn.idx()] = state[StateField::Ecn.idx()].wrapping_add(ev.ecn_bytes);
    state[StateField::Fretx.idx()] =
        state[StateField::Fretx.idx()].wrapping_add(ev.fast_retx as u32);
    state[StateField::Rtt.idx()] = ev.rtt_us;
    state[StateField::Urgent.idx()] |= ev.fast_retx as u32;
}

/// Compile a fold program to eBPF for the `flextoe-ebpf` VM. The packet
/// buffer is the fold buffer: event record + state. Returns the urgent
/// word in `r0`.
pub fn compile(prog: &FoldProg) -> Vec<Insn> {
    let mut b = ProgBuilder::new();
    // r6 = data, r7 = data_end; bail (not urgent) on a short buffer
    b.ldx(BPF_DW, R6, R1, MD_DATA)
        .ldx(BPF_DW, R7, R1, MD_DATA_END)
        .mov64_reg(R8, R6)
        .add64_imm(R8, FOLD_BUF_SIZE as i32)
        .jmp_reg(BPF_JGT, R8, R7, "short");
    for (i, bind) in prog.binds.iter().enumerate() {
        // r3 = arg
        match bind.arg {
            Operand::Const(c) => b.mov64_imm(R3, c as i32),
            Operand::Event(f) => b.ldx(BPF_W, R3, R6, f.off()),
            Operand::State(s) => b.ldx(BPF_W, R3, R6, s.off()),
        };
        let dst_off = bind.dst.off();
        if bind.op == FoldOp::Set {
            b.stx(BPF_W, R6, R3, dst_off);
            continue;
        }
        // r2 = dst; r2 = r2 <op> r3; dst = r2
        b.ldx(BPF_W, R2, R6, dst_off);
        match bind.op {
            FoldOp::Set => unreachable!(),
            FoldOp::Add => b.alu32_reg(BPF_ADD, R2, R3),
            FoldOp::Sub => b.alu32_reg(BPF_SUB, R2, R3),
            FoldOp::Or => b.alu32_reg(BPF_OR, R2, R3),
            FoldOp::And => b.alu32_reg(BPF_AND, R2, R3),
            FoldOp::Shr => b.alu32_reg(BPF_RSH, R2, R3),
            FoldOp::Max => {
                let skip = format!("max_{i}");
                b.jmp_reg(BPF_JGE, R2, R3, &skip)
                    .mov64_reg(R2, R3)
                    .label(&skip)
            }
            FoldOp::Min => {
                let skip = format!("min_{i}");
                b.jmp_reg(BPF_JLE, R2, R3, &skip)
                    .mov64_reg(R2, R3)
                    .label(&skip)
            }
        };
        b.stx(BPF_W, R6, R2, dst_off);
    }
    b.ldx(BPF_W, R0, R6, StateField::Urgent.off()).exit();
    b.label("short").ret(XdpAction::Pass);
    b.build()
}

/// Decode a fold-state array from the back of a fold buffer.
pub fn decode_state(buf: &[u8]) -> [u32; N_STATE] {
    let mut st = [0u32; N_STATE];
    for (i, s) in st.iter_mut().enumerate() {
        let o = EVENT_SIZE + 4 * i;
        *s = u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
    }
    st
}

/// Encode a fold-state array into the back of a fold buffer.
pub fn encode_state(state: &[u32; N_STATE], buf: &mut [u8]) {
    for (i, s) in state.iter().enumerate() {
        let o = EVENT_SIZE + 4 * i;
        buf[o..o + 4].copy_from_slice(&s.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flextoe_ebpf::{MapSet, Vm};

    fn run_vm(prog: &[Insn], state: &mut [u32; N_STATE], ev: &AckEvent) -> (u64, u64) {
        let mut buf = [0u8; FOLD_BUF_SIZE];
        ev.encode_into(&mut buf);
        encode_state(state, &mut buf);
        let mut maps = MapSet::new();
        let res = Vm::new().run(prog, &mut buf, &mut maps).expect("fold runs");
        *state = decode_state(&buf);
        (res.ret, res.insns)
    }

    fn events(seed: u64, n: usize) -> Vec<AckEvent> {
        let mut rng = flextoe_sim::Rng::new(seed);
        (0..n)
            .map(|i| AckEvent {
                acked_bytes: rng.below(20_000) as u32,
                ecn_bytes: rng.below(1500) as u32,
                rtt_us: rng.below(500) as u32,
                fast_retx: rng.chance(0.05),
                now_us: i as u32 * 7,
            })
            .collect()
    }

    #[test]
    fn builtin_native_matches_interpreter_and_vm() {
        let prog = FoldProg::builtin();
        let compiled = compile(&prog);
        let mut native = prog.init;
        let mut interp = prog.init;
        let mut vm = prog.init;
        for ev in events(42, 500) {
            builtin_step(&mut native, &ev);
            prog.step(&mut interp, &ev);
            let (urgent, insns) = run_vm(&compiled, &mut vm, &ev);
            assert!(insns > 0);
            assert_eq!(native, interp, "native fast path == IR interpreter");
            assert_eq!(native, vm, "IR interpreter == compiled eBPF");
            assert_eq!(
                urgent != 0,
                native[StateField::Urgent.idx()] != 0,
                "VM returns the urgent word"
            );
        }
    }

    #[test]
    fn custom_fold_ops_compile_and_match() {
        use EventField as E;
        use FoldOp::*;
        use StateField as S;
        // a custom fold: max RTT, min RTT, halved-acked EWMA-ish scratch
        // (User(2) — state index 7 — is the Min register: starts at MAX)
        let prog = FoldProg {
            init: [0, 0, 0, 0, 0, 0, 0, u32::MAX, 0],
            binds: vec![
                Bind {
                    dst: S::User(0),
                    op: Add,
                    arg: Operand::Event(E::AckedBytes),
                },
                Bind {
                    dst: S::User(0),
                    op: Shr,
                    arg: Operand::Const(1),
                },
                Bind {
                    dst: S::User(1),
                    op: Max,
                    arg: Operand::Event(E::RttUs),
                },
                Bind {
                    dst: S::User(2),
                    op: Min,
                    arg: Operand::Event(E::RttUs),
                },
                Bind {
                    dst: S::Urgent,
                    op: Or,
                    arg: Operand::Event(E::FastRetx),
                },
            ],
        };
        let compiled = compile(&prog);
        flextoe_ebpf::verify(&compiled).expect("compiled fold verifies");
        let mut interp = prog.init;
        let mut vm = prog.init;
        for ev in events(7, 300) {
            prog.step(&mut interp, &ev);
            run_vm(&compiled, &mut vm, &ev);
            assert_eq!(interp, vm);
        }
        assert!(vm[S::User(1).idx()] >= vm[S::User(2).idx()]);
    }

    #[test]
    fn builtin_compiles_and_verifies() {
        let compiled = compile(&FoldProg::builtin());
        flextoe_ebpf::verify(&compiled).expect("builtin fold verifies");
        // stays small — this runs per ACK
        assert!(compiled.len() < 40, "{} insns", compiled.len());
    }

    #[test]
    fn event_roundtrip() {
        let ev = AckEvent {
            acked_bytes: 1448,
            ecn_bytes: 100,
            rtt_us: 55,
            fast_retx: true,
            now_us: 1_000_000,
        };
        let mut buf = [0u8; FOLD_BUF_SIZE];
        ev.encode_into(&mut buf);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), 1448);
        assert_eq!(u32::from_le_bytes(buf[12..16].try_into().unwrap()), 1);
        let st = [7u32, 1, 2, 3, 4, 5, 6, 8, 9];
        encode_state(&st, &mut buf);
        assert_eq!(decode_state(&buf), st);
    }
}
