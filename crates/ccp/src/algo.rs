//! The event-driven congestion-control algorithm runtime (§D).
//!
//! "FlexTOE provides a generic control-plane framework to implement
//! different rate and window-based congestion control algorithms."
//! Algorithms are event-driven in the CCP style: the datapath fold layer
//! delivers batched [`FlowStats`] reports ([`Algorithm::on_report`]), and
//! urgent events — RTO, fast retransmit — arrive out-of-band
//! ([`Algorithm::on_urgent`]). Algorithms return a transmission rate in
//! bytes/second; the control plane converts rates to the scheduler's
//! interval-per-byte representation (the NFP cannot divide, §3.4).
//! Window-based algorithms (CUBIC, Reno-style generic-cong-avoid) map
//! their window to a rate through the RTT estimate, like portus'
//! `ccp_generic_cong_avoid`.

/// One flow's folded statistics over a report window (built-in fold
/// fields; Table 5 post partition: `cnt_ackb`, `cnt_ecnb`, `cnt_fretx`,
/// `rtt_est`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowStats {
    /// Bytes acknowledged over the report window.
    pub acked_bytes: u32,
    /// ECN-marked bytes over the report window.
    pub ecn_bytes: u32,
    /// Fast retransmits over the report window.
    pub fast_retx: u8,
    /// Smoothed RTT estimate, microseconds.
    pub rtt_us: u32,
    /// Whether an RTO fired (urgent path; never set in batched reports).
    pub rto_fired: bool,
    /// Wall-clock span the report covers, microseconds (0 = unknown).
    pub elapsed_us: u32,
}

/// An urgent out-of-interval event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Urgent {
    /// Retransmission timeout fired (control-plane RTO monitor).
    Rto,
    /// Fast retransmit observed by the datapath fold.
    FastRetx,
}

/// An event-driven congestion-control algorithm instance (one per flow).
pub trait Algorithm {
    /// Consume one batched report; returns the new rate in bytes/second.
    fn on_report(&mut self, stats: &FlowStats) -> u64;

    /// React to an urgent event. The default maps the event onto a
    /// synthetic report, which suits loss-reactive algorithms.
    fn on_urgent(&mut self, ev: Urgent) -> u64 {
        let stats = match ev {
            Urgent::Rto => FlowStats {
                rto_fired: true,
                ..Default::default()
            },
            Urgent::FastRetx => FlowStats {
                fast_retx: 1,
                ..Default::default()
            },
        };
        self.on_report(&stats)
    }

    /// Current rate without updating.
    fn rate(&self) -> u64;

    fn name(&self) -> &'static str;
}

/// Collapses loss signals into one congestion *event* per RTT.
///
/// The event-driven runtime delivers an urgent report per fast
/// retransmit; a dupack burst would otherwise apply several
/// multiplicative cuts back-to-back and collapse the flow to its floor
/// (classic TCP cuts once per window — portus' generic_cong_avoid keeps
/// a `curr_cwnd_reduction` deficit for the same reason). RTOs always
/// cut: the retransmit timer's backoff already spaces them.
#[derive(Clone, Copy, Debug)]
pub struct LossGate {
    since_cut_us: u32,
    last_rtt_us: u32,
}

impl Default for LossGate {
    fn default() -> Self {
        LossGate {
            since_cut_us: u32::MAX,
            last_rtt_us: 0,
        }
    }
}

impl LossGate {
    pub fn new() -> LossGate {
        LossGate::default()
    }

    /// Feed one report; returns whether a multiplicative cut applies now.
    pub fn observe(&mut self, stats: &FlowStats) -> bool {
        if stats.rtt_us > 0 {
            self.last_rtt_us = stats.rtt_us;
        }
        self.since_cut_us = self.since_cut_us.saturating_add(stats.elapsed_us);
        let cut = stats.rto_fired || (stats.fast_retx > 0 && self.since_cut_us >= self.last_rtt_us);
        if cut {
            self.since_cut_us = 0;
        }
        cut
    }
}

/// Convert a rate to the scheduler's pacing interval (ps per byte).
/// A rate at or above `line_rate` is treated as uncongested (interval 0 —
/// the Carousel round-robin bypass, §3.4). The division rounds *up*: a
/// truncated interval would pace slightly faster than the algorithm's
/// decision, overshooting the rate it chose.
pub fn rate_to_interval(rate_bps_bytes: u64, line_rate_bytes: u64) -> u64 {
    if rate_bps_bytes == 0 {
        return u64::MAX;
    }
    if rate_bps_bytes >= line_rate_bytes {
        return 0;
    }
    1_000_000_000_000u64.div_ceil(rate_bps_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_gate_one_cut_per_rtt() {
        let mut g = LossGate::new();
        let loss = |elapsed_us| FlowStats {
            fast_retx: 1,
            rtt_us: 100,
            elapsed_us,
            ..Default::default()
        };
        assert!(g.observe(&loss(0)), "first loss always cuts");
        assert!(!g.observe(&loss(30)), "same window: suppressed");
        assert!(!g.observe(&loss(30)));
        assert!(g.observe(&loss(50)), "an RTT later: cuts again");
        // RTOs bypass the gate (the retransmit timer spaces them)
        assert!(g.observe(&FlowStats {
            rto_fired: true,
            ..Default::default()
        }));
        // clean reports never cut
        assert!(!g.observe(&FlowStats {
            acked_bytes: 1000,
            elapsed_us: 1000,
            ..Default::default()
        }));
    }

    #[test]
    fn interval_conversion() {
        let line = 5_000_000_000; // 40 Gbps in bytes/s
        assert_eq!(rate_to_interval(line, line), 0);
        assert_eq!(rate_to_interval(line * 2, line), 0);
        // 1 GB/s -> 1000 ps/byte
        assert_eq!(rate_to_interval(1_000_000_000, line), 1_000);
        // 1 MB/s -> 1_000_000 ps/byte
        assert_eq!(rate_to_interval(1_000_000, line), 1_000_000);
        assert_eq!(rate_to_interval(0, line), u64::MAX);
    }

    #[test]
    fn interval_rounds_up_never_exceeding_requested_rate() {
        let line = 5_000_000_000u64;
        // 3 bytes/s does not divide 1e12: truncation would give an
        // interval whose implied rate exceeds 3 B/s
        assert_eq!(rate_to_interval(3, line), 333_333_333_334);
        for rate in [3u64, 7, 1_000_001, 333_333_337, 4_999_999_999] {
            let interval = rate_to_interval(rate, line);
            // implied rate = 1e12 / interval must not exceed the request
            assert!(
                interval.saturating_mul(rate) >= 1_000_000_000_000,
                "rate {rate}: interval {interval} paces faster than requested"
            );
            // …and must stay within one byte-interval of it (tight bound)
            assert!(
                (interval - 1).saturating_mul(rate) < 1_000_000_000_000,
                "rate {rate}: interval {interval} overly conservative"
            );
        }
    }
}
