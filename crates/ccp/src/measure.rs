//! The datapath measurement layer: per-flow fold state, report batching,
//! and the pooled report buffers shared with the control plane.
//!
//! The post-processing stage calls [`CcpDatapath::on_ack`] for every
//! ACK/ECN/retransmit event. The fold aggregates in place; when a flow's
//! report interval elapses (or an urgent event — fast retransmit — fires)
//! its fold snapshot is appended to the currently-open batch. A batch is
//! sealed when it fills, lingers too long, or carries an urgent report,
//! and travels to the control plane as a single `Msg::Report` carrying
//! only a slot index into this pool — many flows per message, no per-ACK
//! control-plane event, no per-report heap allocation on the hot path.

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_ebpf::{Insn, MapSet, Vm};
use flextoe_sim::{Duration, ReportBatchToken};

use crate::fold::{
    builtin_step, decode_state, encode_state, AckEvent, StateField, FOLD_BUF_SIZE, N_STATE,
};

/// One flow's folded measurements, snapshotted into a report batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowReport {
    pub conn: u32,
    /// Install generation of `conn` when this report was folded.
    /// Connection ids are reused (lowest-free-index allocation); a
    /// report that lingered across a teardown must not feed the id's
    /// *next* flow — consumers check `epoch` against
    /// [`CcpDatapath::flow_epoch`].
    pub epoch: u32,
    /// Bytes acknowledged over the report window.
    pub acked_bytes: u32,
    /// ECN-marked bytes over the report window.
    pub ecn_bytes: u32,
    /// Fast retransmits over the report window.
    pub fast_retx: u32,
    /// Latest smoothed RTT estimate, microseconds.
    pub rtt_us: u32,
    /// Wall-clock span the report covers, microseconds.
    pub elapsed_us: u32,
    /// Custom-fold scratch registers (`StateField::User`), snapshotted
    /// but *not* reset per window — flow-persistent accumulators.
    pub user: [u32; 4],
    /// Sealed out-of-interval by an urgent event (fast retransmit).
    pub urgent: bool,
}

/// A pooled batch buffer. `entries` keeps its capacity across reuse, so
/// steady-state batching never allocates.
#[derive(Debug, Default)]
struct Batch {
    entries: Vec<FlowReport>,
    urgent: bool,
    opened_at_us: u32,
}

/// How a flow's fold executes.
enum Exec {
    /// Native fast path for the built-in fold.
    Native,
    /// A custom fold program, compiled to eBPF, on the shared VM.
    Vm(Rc<Vec<Insn>>),
}

struct FlowFold {
    exec: Exec,
    init: [u32; N_STATE],
    state: [u32; N_STATE],
    /// When this flow's current report window opened. Due-ness is a
    /// `wrapping_sub` against this, so µs timestamps may wrap (u32 µs
    /// wraps after ~71 minutes of simulated time).
    last_report_us: u32,
}

/// Measurement-layer configuration (programmed by the control plane).
#[derive(Clone, Copy, Debug)]
pub struct MeasureCfg {
    /// Per-flow report interval.
    pub report_interval: Duration,
    /// Seal an open batch once it holds this many flow reports.
    pub batch_capacity: usize,
    /// Seal an open batch after this long even if not full.
    pub linger: Duration,
}

impl Default for MeasureCfg {
    fn default() -> Self {
        MeasureCfg {
            report_interval: Duration::from_us(50),
            batch_capacity: 32,
            linger: Duration::from_us(10),
        }
    }
}

/// Result of feeding one ACK event into the measurement layer.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// A batch was sealed: send this token to the control plane.
    pub sealed: Option<ReportBatchToken>,
    /// Flow reports inside the sealed batch (diagnostics; the
    /// authoritative counters are bumped where batches are consumed).
    pub sealed_entries: u32,
    /// eBPF instructions executed (0 on the native fast path) — charged
    /// against the FPC cost model by the post stage.
    pub vm_insns: u64,
    /// Whether a fold was installed for this flow at all.
    pub folded: bool,
}

/// The per-NIC measurement state. Shared (`Rc<RefCell>`) between the
/// post-processing stages and the control plane — the simulation analogue
/// of NIC-memory fold state plus a host-shared report ring.
pub struct CcpDatapath {
    cfg: MeasureCfg,
    flows: Vec<Option<FlowFold>>,
    /// Per-conn install generation (bumped on every install).
    epochs: Vec<u32>,
    pool: Vec<Batch>,
    free: Vec<u32>,
    open: Option<u32>,
    vm: Vm,
    maps: MapSet,
    buf: [u8; FOLD_BUF_SIZE],
    /// Fold events processed (diagnostics).
    pub events: u64,
    /// Flow reports emitted.
    pub reports: u64,
    /// Batches sealed.
    pub batches: u64,
}

impl CcpDatapath {
    pub fn new(cfg: MeasureCfg) -> CcpDatapath {
        CcpDatapath {
            cfg,
            flows: Vec::new(),
            epochs: Vec::new(),
            pool: Vec::new(),
            free: Vec::new(),
            open: None,
            vm: Vm::new(),
            maps: MapSet::new(),
            buf: [0u8; FOLD_BUF_SIZE],
            events: 0,
            reports: 0,
            batches: 0,
        }
    }

    /// Reprogram the report cadence (control-plane MMIO analogue).
    pub fn set_cfg(&mut self, cfg: MeasureCfg) {
        self.cfg = cfg;
    }

    pub fn cfg(&self) -> MeasureCfg {
        self.cfg
    }

    /// Install a fold for `conn`. `None` selects the built-in fold's
    /// native fast path; `Some` runs a compiled custom fold on the VM.
    pub fn install(
        &mut self,
        conn: u32,
        prog: Option<(Rc<Vec<Insn>>, [u32; N_STATE])>,
        now_us: u32,
    ) {
        let idx = conn as usize;
        if idx >= self.flows.len() {
            self.flows.resize_with(idx + 1, || None);
            self.epochs.resize(idx + 1, 0);
        }
        self.epochs[idx] = self.epochs[idx].wrapping_add(1);
        let (exec, init) = match prog {
            None => (Exec::Native, [0u32; N_STATE]),
            Some((p, init)) => (Exec::Vm(p), init),
        };
        self.flows[idx] = Some(FlowFold {
            exec,
            init,
            state: init,
            last_report_us: now_us,
        });
    }

    pub fn uninstall(&mut self, conn: u32) {
        if let Some(slot) = self.flows.get_mut(conn as usize) {
            *slot = None;
        }
    }

    /// Current install generation of `conn` (0 = never installed).
    pub fn flow_epoch(&self, conn: u32) -> u32 {
        self.epochs.get(conn as usize).copied().unwrap_or(0)
    }

    /// Fold one ACK event into `conn`'s state; snapshot/batch when due.
    pub fn on_ack(&mut self, conn: u32, ev: &AckEvent) -> AckOutcome {
        let Some(Some(flow)) = self.flows.get_mut(conn as usize) else {
            return AckOutcome::default();
        };
        self.events += 1;
        let vm_insns = match &flow.exec {
            Exec::Native => {
                builtin_step(&mut flow.state, ev);
                0
            }
            Exec::Vm(prog) => {
                ev.encode_into(&mut self.buf);
                encode_state(&flow.state, &mut self.buf);
                match self.vm.run(prog.as_slice(), &mut self.buf, &mut self.maps) {
                    Ok(res) => {
                        flow.state = decode_state(&self.buf);
                        res.insns
                    }
                    // a trapping fold is a programming error; fail safe by
                    // keeping the previous state
                    Err(_) => 0,
                }
            }
        };

        let urgent = flow.state[StateField::Urgent.idx()] != 0;
        // wraparound-safe: elapsed-since-window-open, not an absolute
        // deadline comparison
        let due = urgent
            || ev.now_us.wrapping_sub(flow.last_report_us)
                >= self.cfg.report_interval.as_us() as u32;
        if !due {
            return AckOutcome {
                vm_insns,
                folded: true,
                ..Default::default()
            };
        }

        let report = FlowReport {
            conn,
            epoch: self.epochs[conn as usize],
            acked_bytes: flow.state[StateField::Acked.idx()],
            ecn_bytes: flow.state[StateField::Ecn.idx()],
            fast_retx: flow.state[StateField::Fretx.idx()],
            rtt_us: flow.state[StateField::Rtt.idx()],
            elapsed_us: ev.now_us.wrapping_sub(flow.last_report_us),
            user: [
                flow.state[StateField::User(0).idx()],
                flow.state[StateField::User(1).idx()],
                flow.state[StateField::User(2).idx()],
                flow.state[StateField::User(3).idx()],
            ],
            urgent,
        };
        // reset the windowed accumulators; the RTT estimate and the User
        // scratch registers persist across windows (flow-scoped state)
        for f in [
            StateField::Acked,
            StateField::Ecn,
            StateField::Fretx,
            StateField::Urgent,
        ] {
            flow.state[f.idx()] = flow.init[f.idx()];
        }
        flow.last_report_us = ev.now_us;

        // nothing to tell the algorithm about: just restart the window
        if report.acked_bytes == 0 && report.ecn_bytes == 0 && report.fast_retx == 0 && !urgent {
            return AckOutcome {
                vm_insns,
                folded: true,
                ..Default::default()
            };
        }

        let sealed = self.append(report, ev.now_us);
        let sealed_entries = sealed
            .map(|t| self.pool[t.slot as usize].entries.len() as u32)
            .unwrap_or(0);
        AckOutcome {
            sealed,
            sealed_entries,
            vm_insns,
            folded: true,
        }
    }

    fn append(&mut self, report: FlowReport, now_us: u32) -> Option<ReportBatchToken> {
        let slot = match self.open {
            Some(s) => s,
            None => {
                let s = self.free.pop().unwrap_or_else(|| {
                    self.pool.push(Batch::default());
                    (self.pool.len() - 1) as u32
                });
                self.pool[s as usize].opened_at_us = now_us;
                self.open = Some(s);
                s
            }
        };
        let urgent = report.urgent;
        let batch = &mut self.pool[slot as usize];
        batch.entries.push(report);
        batch.urgent |= urgent;
        self.reports += 1;
        let full = batch.entries.len() >= self.cfg.batch_capacity;
        let lingered = now_us.wrapping_sub(batch.opened_at_us) >= self.cfg.linger.as_us() as u32;
        if urgent || full || lingered {
            Some(self.seal(slot))
        } else {
            None
        }
    }

    fn seal(&mut self, slot: u32) -> ReportBatchToken {
        self.open = None;
        self.batches += 1;
        ReportBatchToken {
            slot,
            urgent: self.pool[slot as usize].urgent,
        }
    }

    /// Control-plane backstop: seal the open batch if it has lingered
    /// (covers flows that went idle right after appending a report).
    pub fn flush_stale(&mut self, now_us: u32) -> Option<ReportBatchToken> {
        let slot = self.open?;
        let batch = &self.pool[slot as usize];
        if batch.entries.is_empty() {
            return None;
        }
        if now_us.wrapping_sub(batch.opened_at_us) >= self.cfg.linger.as_us() as u32 {
            return Some(self.seal(slot));
        }
        None
    }

    /// Seal the open batch unconditionally — used when the control loop
    /// goes quiet (last flow torn down): no further ACK or tick would
    /// ever flush it.
    pub fn flush_open(&mut self) -> Option<ReportBatchToken> {
        let slot = self.open?;
        if self.pool[slot as usize].entries.is_empty() {
            return None;
        }
        Some(self.seal(slot))
    }

    /// Take a sealed batch's entries for processing (no copy: the `Vec`
    /// moves out and must come back through [`CcpDatapath::release`]).
    pub fn take(&mut self, slot: u32) -> Vec<FlowReport> {
        std::mem::take(&mut self.pool[slot as usize].entries)
    }

    /// Return a processed batch buffer to the pool (capacity retained).
    pub fn release(&mut self, slot: u32, mut entries: Vec<FlowReport>) {
        entries.clear();
        let batch = &mut self.pool[slot as usize];
        batch.entries = entries;
        batch.urgent = false;
        self.free.push(slot);
    }

    /// Pool capacity in batch buffers (diagnostics: should plateau at the
    /// in-flight working set, not grow with runtime).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }
}

pub type SharedCcp = Rc<RefCell<CcpDatapath>>;

pub fn shared_datapath(cfg: MeasureCfg) -> SharedCcp {
    Rc::new(RefCell::new(CcpDatapath::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(acked: u32, now_us: u32) -> AckEvent {
        AckEvent {
            acked_bytes: acked,
            rtt_us: 40,
            now_us,
            ..Default::default()
        }
    }

    fn dp() -> CcpDatapath {
        CcpDatapath::new(MeasureCfg {
            report_interval: Duration::from_us(50),
            batch_capacity: 4,
            linger: Duration::from_us(10),
        })
    }

    #[test]
    fn no_report_before_interval() {
        let mut d = dp();
        d.install(1, None, 0);
        for t in (0..45).step_by(5) {
            assert!(d.on_ack(1, &ev(1000, t)).sealed.is_none());
        }
        assert_eq!(d.reports, 0, "aggregation only inside the interval");
    }

    #[test]
    fn interval_elapsed_emits_batched_report() {
        let mut d = dp();
        d.install(1, None, 0);
        d.install(2, None, 0);
        for t in (0..50).step_by(5) {
            d.on_ack(1, &ev(1000, t));
            d.on_ack(2, &ev(500, t));
        }
        // both flows due at t=50; second append hits capacity? no — seals by
        // linger only after 10us; at t=50 batch opens, still one entry
        let o1 = d.on_ack(1, &ev(1000, 50));
        assert!(o1.sealed.is_none());
        let o2 = d.on_ack(2, &ev(500, 50));
        assert!(o2.sealed.is_none(), "no linger yet");
        // linger expires: next due report seals a batch holding all three
        let o3 = d.on_ack(1, &ev(1000, 105));
        let tok = o3.sealed.expect("lingered batch seals");
        let entries = d.take(tok.slot);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].conn, 1);
        assert_eq!(entries[0].acked_bytes, 11_000);
        assert_eq!(entries[1].conn, 2);
        assert_eq!(entries[1].acked_bytes, 5_500);
        assert!(entries.iter().all(|r| !r.urgent));
        d.release(tok.slot, entries);
        assert_eq!(d.pool_size(), 1, "pooled, not reallocated");
    }

    #[test]
    fn urgent_event_seals_immediately() {
        let mut d = dp();
        d.install(3, None, 0);
        let out = d.on_ack(
            3,
            &AckEvent {
                acked_bytes: 100,
                fast_retx: true,
                now_us: 5,
                ..Default::default()
            },
        );
        let tok = out.sealed.expect("fast-retx is urgent");
        assert!(tok.urgent);
        let entries = d.take(tok.slot);
        assert_eq!(entries.len(), 1);
        assert!(entries[0].urgent);
        assert_eq!(entries[0].fast_retx, 1);
        d.release(tok.slot, entries);
    }

    #[test]
    fn capacity_seals_batch() {
        let mut d = dp();
        for c in 0..8 {
            d.install(c, None, 0);
        }
        let mut sealed = Vec::new();
        for c in 0..8 {
            if let Some(t) = d.on_ack(c, &ev(100, 60)).sealed {
                sealed.push((t, d.take(t.slot).len()));
            }
        }
        assert_eq!(sealed.len(), 2, "8 due flows / capacity 4");
        assert!(sealed.iter().all(|&(_, n)| n == 4));
    }

    #[test]
    fn pool_buffers_are_reused() {
        let mut d = dp();
        d.install(1, None, 0);
        for round in 1..50u32 {
            let t = round * 60;
            // urgent seals every time → one batch in flight at once
            let out = d.on_ack(
                1,
                &AckEvent {
                    acked_bytes: 10,
                    fast_retx: true,
                    now_us: t,
                    ..Default::default()
                },
            );
            let tok = out.sealed.unwrap();
            let e = d.take(tok.slot);
            d.release(tok.slot, e);
        }
        assert_eq!(d.pool_size(), 1, "single buffer recycled {} times", 49);
    }

    #[test]
    fn flush_stale_covers_idle_flows() {
        let mut d = dp();
        d.install(1, None, 0);
        // due report appended at t=55, flow goes idle
        assert!(d.on_ack(1, &ev(1000, 55)).sealed.is_none());
        assert!(d.flush_stale(56).is_none(), "not lingered yet");
        let tok = d.flush_stale(70).expect("stale batch flushed");
        assert_eq!(d.take(tok.slot).len(), 1);
    }

    #[test]
    fn report_cadence_survives_timestamp_wrap() {
        let mut d = dp();
        let start = u32::MAX - 20;
        d.install(1, None, start);
        // 10 µs into the window (still pre-wrap): not due
        assert!(d
            .on_ack(1, &ev(100, start.wrapping_add(10)))
            .sealed
            .is_none());
        assert_eq!(d.reports, 0);
        // 55 µs elapsed — now_us has wrapped past zero — due
        d.on_ack(1, &ev(100, start.wrapping_add(55)));
        assert_eq!(d.reports, 1, "report window spans the µs wrap");
        let tok = d.flush_open().expect("open batch seals");
        let entries = d.take(tok.slot);
        assert_eq!(entries[0].acked_bytes, 200);
        assert_eq!(entries[0].elapsed_us, 55);
        d.release(tok.slot, entries);
    }

    #[test]
    fn epoch_guards_connection_id_reuse() {
        let mut d = dp();
        d.install(1, None, 0);
        let e1 = d.flow_epoch(1);
        // due report appended; batch still open when the flow tears down
        assert!(d.on_ack(1, &ev(1000, 55)).sealed.is_none());
        d.uninstall(1);
        d.install(1, None, 60); // connection id reused by a new flow
        assert_ne!(d.flow_epoch(1), e1, "reinstall bumps the generation");
        let tok = d.flush_open().expect("stale batch still delivered");
        let entries = d.take(tok.slot);
        assert_eq!(entries[0].epoch, e1, "report carries its fold-time epoch");
        assert_ne!(
            entries[0].epoch,
            d.flow_epoch(1),
            "consumers can reject the stale report"
        );
        d.release(tok.slot, entries);
    }

    #[test]
    fn user_registers_persist_across_report_windows() {
        use crate::fold::{compile, Bind, EventField, FoldOp, FoldProg, Operand};
        // custom fold: User(0) accumulates acked bytes and is never reset
        let mut prog = FoldProg::builtin();
        prog.binds.push(Bind {
            dst: StateField::User(0),
            op: FoldOp::Add,
            arg: Operand::Event(EventField::AckedBytes),
        });
        let compiled = Rc::new(compile(&prog));
        let mut d = dp();
        d.install(1, Some((compiled, prog.init)), 0);
        assert!(d.on_ack(1, &ev(1000, 55)).sealed.is_none()); // 1st window
        let tok = d
            .on_ack(1, &ev(1000, 110)) // 2nd window: lingered batch seals
            .sealed
            .expect("reports batched");
        let entries = d.take(tok.slot);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].acked_bytes, 1000, "windowed field resets");
        assert_eq!(entries[1].acked_bytes, 1000);
        assert_eq!(entries[0].user[0], 1000);
        assert_eq!(entries[1].user[0], 2000, "User scratch persists");
        d.release(tok.slot, entries);
    }

    #[test]
    fn flush_open_seals_unconditionally() {
        let mut d = dp();
        d.install(1, None, 0);
        assert!(d.flush_open().is_none(), "nothing open yet");
        assert!(d.on_ack(1, &ev(1000, 55)).sealed.is_none());
        // no linger elapsed — stale flush refuses, open flush delivers
        assert!(d.flush_stale(56).is_none());
        let tok = d.flush_open().expect("sealed on quiesce");
        assert_eq!(d.take(tok.slot).len(), 1);
    }

    #[test]
    fn uninstalled_flow_is_ignored() {
        let mut d = dp();
        let out = d.on_ack(9, &ev(1000, 100));
        assert!(!out.folded && out.sealed.is_none());
        d.install(9, None, 100);
        assert!(d.on_ack(9, &ev(1000, 120)).folded);
        d.uninstall(9);
        assert!(!d.on_ack(9, &ev(1000, 140)).folded);
    }

    #[test]
    fn vm_fold_reports_match_native() {
        use crate::fold::{compile, FoldProg};
        let prog = FoldProg::builtin();
        let compiled = Rc::new(compile(&prog));
        let mut native = dp();
        let mut vm = dp();
        native.install(1, None, 0);
        vm.install(1, Some((compiled, prog.init)), 0);
        for t in 0..200u32 {
            let e = AckEvent {
                acked_bytes: 1448,
                ecn_bytes: if t % 7 == 0 { 1448 } else { 0 },
                rtt_us: 30 + (t % 5),
                fast_retx: false,
                now_us: t * 3,
            };
            let a = native.on_ack(1, &e);
            let b = vm.on_ack(1, &e);
            assert!(b.vm_insns > 0, "custom folds run on the VM");
            assert_eq!(a.sealed.map(|s| s.slot), b.sealed.map(|s| s.slot));
            if let (Some(x), Some(y)) = (a.sealed, b.sealed) {
                let ea = native.take(x.slot);
                let eb = vm.take(y.slot);
                assert_eq!(ea, eb, "identical report streams");
                native.release(x.slot, ea);
                vm.release(y.slot, eb);
            }
        }
    }
}
