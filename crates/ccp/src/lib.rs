//! # flextoe-ccp — the out-of-band congestion-control plane
//!
//! FlexTOE separates congestion control from the data-path (§D): the
//! data-path maintains per-flow statistics, a control plane computes
//! rates and programs the flow scheduler over MMIO. This crate gives that
//! split the CCP architecture (ccp-project/portus):
//!
//! * **Fold programs** ([`fold`]): per-flow measurement aggregation runs
//!   in-line with the post-processing stage, described by a small IR,
//!   compiled to eBPF and executed on the `flextoe-ebpf` VM — with a
//!   native fast path for the built-in fold.
//! * **Batched reports** ([`measure`]): folded summaries for many flows
//!   travel to the control plane in pooled batch buffers referenced by a
//!   typed `Msg::Report` token — out-of-band, no per-ACK control-plane
//!   event, no per-report allocation.
//! * **Algorithm runtime** ([`algo`], [`algos`]): an event-driven
//!   `on_report`/`on_urgent` API with a name-keyed [`algos::Registry`];
//!   DCTCP and TIMELY are ported onto it, CUBIC and a Reno-style
//!   generic-cong-avoid (window → rate via the RTT estimate) are added.

pub mod algo;
pub mod algos;
pub mod fold;
pub mod measure;

pub use algo::{rate_to_interval, Algorithm, FlowStats, Urgent};
pub use algos::{Cubic, Dctcp, GenericCongAvoid, Registry, Reno, Timely, WindowRule};
pub use fold::{
    compile, AckEvent, Bind, EventField, FoldOp, FoldProg, FoldSpec, Operand, StateField,
};
pub use measure::{shared_datapath, AckOutcome, CcpDatapath, FlowReport, MeasureCfg, SharedCcp};

/// The instruction type custom folds compile to (`flextoe-ebpf`).
pub use flextoe_ebpf::Insn;
