//! CUBIC [RFC 8312] as a [`WindowRule`] for the generic-cong-avoid
//! harness: window growth is a cubic function of the time since the last
//! congestion event, centered on the window at that event (`W_max`) —
//! RTT-independent probing that dominates WAN kernels, here available to
//! offloaded flows through the same runtime as DCTCP/TIMELY.

use super::gca::{WindowRule, MSS};

/// Cubic scaling constant C (RFC 8312 §5).
const C: f64 = 0.4;
/// Multiplicative-decrease factor β_cubic.
const BETA: f64 = 0.7;

#[derive(Clone, Copy, Debug, Default)]
pub struct Cubic {
    /// Window (in MSS) at the last congestion event.
    w_max_mss: f64,
    /// Inflection-point delay K, seconds.
    k: f64,
    /// Time since the last congestion event, seconds (accumulated from
    /// report `elapsed_us` — the runtime is event-driven, no clock reads).
    t: f64,
}

impl Cubic {
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max_mss
    }
}

impl WindowRule for Cubic {
    fn on_ack(&mut self, cwnd: f64, acked: f64, rtt_us: u32, elapsed_us: u32) -> f64 {
        self.t += elapsed_us as f64 * 1e-6;
        let cwnd_mss = cwnd / MSS;
        let acked_mss = acked / MSS;
        if self.w_max_mss == 0.0 {
            // no congestion event yet: Reno-style probing
            return cwnd + MSS * (acked / cwnd);
        }
        // target the cubic curve one RTT ahead; growth is ack-clocked
        let target = self.w_cubic(self.t + rtt_us as f64 * 1e-6);
        let next_mss = if target > cwnd_mss {
            cwnd_mss + (target - cwnd_mss).min(acked_mss)
        } else {
            // TCP-friendly floor region: creep forward very slowly
            cwnd_mss + acked_mss / (100.0 * cwnd_mss)
        };
        next_mss * MSS
    }

    fn on_loss(&mut self, cwnd: f64) -> f64 {
        let cwnd_mss = cwnd / MSS;
        // fast convergence (RFC 8312 §4.6)
        self.w_max_mss = if cwnd_mss < self.w_max_mss {
            cwnd_mss * (1.0 + BETA) / 2.0
        } else {
            cwnd_mss
        };
        self.k = (self.w_max_mss * (1.0 - BETA) / C).cbrt();
        self.t = 0.0;
        cwnd * BETA
    }

    fn reset(&mut self) {
        *self = Cubic::default();
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{Algorithm, FlowStats};
    use crate::algos::gca::GenericCongAvoid;

    fn cubic() -> GenericCongAvoid<Cubic> {
        GenericCongAvoid::new(Cubic::default(), 5_000_000_000)
    }

    fn acked(n: u32, elapsed_us: u32) -> FlowStats {
        FlowStats {
            acked_bytes: n,
            rtt_us: 100,
            elapsed_us,
            ..Default::default()
        }
    }

    #[test]
    fn loss_cuts_by_beta_and_recovers_concavely() {
        let mut cc = cubic();
        for _ in 0..14 {
            let w = cc.cwnd_bytes() as u32;
            cc.on_report(&acked(w, 100));
        }
        let before = cc.cwnd_bytes() as f64;
        cc.on_report(&FlowStats {
            fast_retx: 1,
            rtt_us: 100,
            ..Default::default()
        });
        let after = cc.cwnd_bytes() as f64;
        assert!(
            (after / before - BETA).abs() < 0.01,
            "β cut: {after}/{before}"
        );
        // growth back toward w_max decelerates as it approaches (concave)
        let mut gains = Vec::new();
        for _ in 0..12 {
            let w = cc.cwnd_bytes();
            cc.on_report(&acked(w as u32, 2_000));
            gains.push(cc.cwnd_bytes().saturating_sub(w));
        }
        let early: u64 = gains[..4].iter().sum();
        let late: u64 = gains[8..].iter().sum();
        assert!(
            late < early,
            "concave approach to w_max: early {early} late {late} ({gains:?})"
        );
    }

    #[test]
    fn plateau_then_convex_probing_beyond_w_max() {
        let mut cc = cubic();
        // grow to a realistic window (~320 MSS → K ≈ 5.7 s), then lose
        for _ in 0..5 {
            let w = cc.cwnd_bytes() as u32;
            cc.on_report(&acked(w, 100));
        }
        cc.on_report(&FlowStats {
            fast_retx: 1,
            rtt_us: 100,
            ..Default::default()
        });
        // run long past K: the window must exceed w_max again (probing)
        let w_after_cut = cc.cwnd_bytes();
        for _ in 0..300 {
            let w = cc.cwnd_bytes();
            cc.on_report(&acked(w as u32, 100_000));
        }
        assert!(
            cc.cwnd_bytes() > w_after_cut * 10 / 7,
            "probes beyond w_max: {} vs cut {}",
            cc.cwnd_bytes(),
            w_after_cut
        );
    }

    #[test]
    fn ignores_ecn_marks_unlike_dctcp() {
        // CUBIC is loss-based: ECN-marked bytes alone must not cut the
        // window (the cc experiment's dctcp-vs-cubic contrast).
        let mut cc = cubic();
        for _ in 0..10 {
            let w = cc.cwnd_bytes() as u32;
            cc.on_report(&acked(w, 100));
        }
        let before = cc.cwnd_bytes();
        cc.on_report(&FlowStats {
            acked_bytes: 10_000,
            ecn_bytes: 10_000,
            rtt_us: 100,
            elapsed_us: 100,
            ..Default::default()
        });
        assert!(cc.cwnd_bytes() >= before, "marks alone don't cut CUBIC");
    }
}
