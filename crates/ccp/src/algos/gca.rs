//! Window-based algorithms on a rate-programmed scheduler: the
//! generic-cong-avoid harness (portus `ccp_generic_cong_avoid`).
//!
//! Classic TCP algorithms reason in a congestion *window*; FlexTOE's flow
//! scheduler is programmed with a *rate* (interval-per-byte, §3.4). The
//! harness keeps the window state machine — slow start to `ss_thresh`,
//! then a pluggable [`WindowRule`] for congestion avoidance and loss —
//! and maps the window onto a rate through the flow's RTT estimate:
//! `rate = cwnd / rtt`.

use crate::algo::{Algorithm, FlowStats, LossGate};

/// Default maximum segment size used for window arithmetic.
pub const MSS: f64 = 1448.0;

/// A congestion-avoidance window rule (the pluggable half of
/// generic-cong-avoid). All windows are in bytes.
pub trait WindowRule {
    /// Congestion-avoidance growth for `acked` newly-acknowledged bytes.
    fn on_ack(&mut self, cwnd: f64, acked: f64, rtt_us: u32, elapsed_us: u32) -> f64;
    /// Multiplicative decrease on fast retransmit.
    fn on_loss(&mut self, cwnd: f64) -> f64;
    /// Forget history after an RTO (window collapses to init).
    fn reset(&mut self) {}
    fn name(&self) -> &'static str;
}

/// Reno: AIMD — one MSS per RTT of acknowledged data, halve on loss.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reno;

impl WindowRule for Reno {
    fn on_ack(&mut self, cwnd: f64, acked: f64, _rtt_us: u32, _elapsed_us: u32) -> f64 {
        cwnd + MSS * (acked / cwnd)
    }

    fn on_loss(&mut self, cwnd: f64) -> f64 {
        cwnd / 2.0
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// The generic-cong-avoid harness wrapping a [`WindowRule`].
pub struct GenericCongAvoid<R: WindowRule> {
    rule: R,
    cwnd: f64,
    init_cwnd: f64,
    ss_thresh: f64,
    rtt_us: u32,
    line_rate: u64,
    min_rate: u64,
    rate: u64,
    loss_gate: LossGate,
}

impl<R: WindowRule> GenericCongAvoid<R> {
    pub fn new(rule: R, line_rate_bytes: u64) -> GenericCongAvoid<R> {
        let init_cwnd = 10.0 * MSS;
        GenericCongAvoid {
            rule,
            cwnd: init_cwnd,
            init_cwnd,
            ss_thresh: f64::MAX,
            rtt_us: 0,
            line_rate: line_rate_bytes,
            min_rate: 10_000,
            rate: line_rate_bytes / 10,
            loss_gate: LossGate::new(),
        }
    }

    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    /// Window → rate through the RTT estimate, clamped to the link.
    fn window_to_rate(&mut self) {
        if self.rtt_us == 0 {
            return; // no sample yet: keep the initial rate
        }
        let rate = self.cwnd * 1_000_000.0 / self.rtt_us as f64;
        self.rate = (rate as u64).clamp(self.min_rate, self.line_rate);
    }
}

impl<R: WindowRule> Algorithm for GenericCongAvoid<R> {
    fn on_report(&mut self, stats: &FlowStats) -> u64 {
        if stats.rtt_us > 0 {
            self.rtt_us = stats.rtt_us;
        }
        let cut = self.loss_gate.observe(stats);
        if stats.rto_fired {
            self.ss_thresh = (self.cwnd / 2.0).max(self.init_cwnd);
            self.cwnd = self.init_cwnd;
            self.rule.reset();
        } else if stats.fast_retx > 0 {
            if cut {
                self.cwnd = self.rule.on_loss(self.cwnd).max(self.init_cwnd);
                self.ss_thresh = self.cwnd;
            }
            // else: same congestion event as the cut just applied — hold
        } else if stats.acked_bytes > 0 {
            let mut acked = stats.acked_bytes as f64;
            if self.cwnd < self.ss_thresh {
                // slow start consumes acked bytes up to ss_thresh
                let ss = acked.min(self.ss_thresh - self.cwnd);
                self.cwnd += ss;
                acked -= ss;
            }
            if acked > 0.0 {
                self.cwnd = self
                    .rule
                    .on_ack(self.cwnd, acked, stats.rtt_us, stats.elapsed_us);
            }
        }
        self.window_to_rate();
        self.rate
    }

    fn rate(&self) -> u64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        self.rule.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acked(n: u32, rtt_us: u32) -> FlowStats {
        FlowStats {
            acked_bytes: n,
            rtt_us,
            elapsed_us: 50,
            ..Default::default()
        }
    }

    #[test]
    fn slow_start_doubles_window() {
        let mut cc = GenericCongAvoid::new(Reno, 5_000_000_000);
        let w0 = cc.cwnd_bytes();
        cc.on_report(&acked(w0 as u32, 100));
        assert_eq!(cc.cwnd_bytes(), 2 * w0, "a full window of acks doubles");
    }

    #[test]
    fn reno_aimd_after_loss() {
        let line = 5_000_000_000;
        let mut cc = GenericCongAvoid::new(Reno, line);
        for _ in 0..12 {
            let w = cc.cwnd_bytes() as u32;
            cc.on_report(&acked(w, 100));
        }
        let before = cc.cwnd_bytes();
        cc.on_report(&FlowStats {
            fast_retx: 1,
            rtt_us: 100,
            ..Default::default()
        });
        assert_eq!(cc.cwnd_bytes(), before / 2, "loss halves");
        // congestion avoidance: +1 MSS per window of acks
        let w = cc.cwnd_bytes();
        cc.on_report(&acked(w as u32, 100));
        let grown = cc.cwnd_bytes() - w;
        assert!(
            (grown as f64 - MSS).abs() < 2.0,
            "additive increase ≈ 1 MSS, got {grown}"
        );
    }

    #[test]
    fn rto_collapses_to_init() {
        let mut cc = GenericCongAvoid::new(Reno, 5_000_000_000);
        for _ in 0..12 {
            let w = cc.cwnd_bytes() as u32;
            cc.on_report(&acked(w, 100));
        }
        cc.on_report(&FlowStats {
            rto_fired: true,
            ..Default::default()
        });
        assert_eq!(cc.cwnd_bytes(), (10.0 * MSS) as u64);
    }

    #[test]
    fn window_maps_to_rate_via_rtt() {
        let mut cc = GenericCongAvoid::new(Reno, u64::MAX / 2);
        cc.on_report(&acked(14_480, 1_000)); // rtt 1ms
        let expect = cc.cwnd_bytes() as f64 * 1_000.0; // cwnd / 1ms
        let got = cc.rate() as f64;
        assert!((got - expect).abs() / expect < 0.01, "{got} vs {expect}");
        // halving the RTT doubles the rate for the same window
        let r1 = cc.rate();
        cc.on_report(&FlowStats {
            rtt_us: 500,
            ..Default::default()
        });
        assert!(cc.rate() > r1 * 3 / 2);
    }

    #[test]
    fn no_rtt_sample_keeps_initial_rate() {
        let line = 5_000_000_000;
        let mut cc = GenericCongAvoid::new(Reno, line);
        let r0 = cc.rate();
        cc.on_report(&acked(10_000, 0));
        assert_eq!(cc.rate(), r0);
    }
}
