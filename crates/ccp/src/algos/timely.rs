//! TIMELY \[34\]: RTT-gradient congestion control, the paper's second
//! control-plane policy (§2.1, §D: "FlexTOE implements DCTCP and TIMELY").
//!
//! The data-path's accurate ACK timestamps (§3.1.3 "Stamp") provide the
//! RTT samples; the control plane computes the gradient — exactly the
//! computation that is too expensive on FPCs (§2.3: 1,500 cycles/RTT).

use crate::algo::{Algorithm, FlowStats, LossGate};

#[derive(Clone, Debug)]
pub struct Timely {
    rate: u64,
    loss_gate: LossGate,
    prev_rtt_us: f64,
    /// EWMA of the normalized RTT gradient.
    gradient: f64,
    line_rate: u64,
    min_rate: u64,
    ai_step: u64,
    /// Below this RTT, always increase (us).
    t_low: f64,
    /// Above this RTT, always decrease (us).
    t_high: f64,
    /// Multiplicative-decrease factor β.
    beta: f64,
    /// Gradient EWMA weight α.
    alpha: f64,
    /// Consecutive gradient-increase steps (HAI mode).
    hai_count: u32,
}

impl Timely {
    pub fn new(line_rate_bytes: u64) -> Timely {
        Timely {
            rate: line_rate_bytes / 10,
            loss_gate: LossGate::new(),
            prev_rtt_us: 0.0,
            gradient: 0.0,
            line_rate: line_rate_bytes,
            // same ACK-clock-preserving floor as Dctcp
            min_rate: (line_rate_bytes / 1000).max(10_000),
            ai_step: line_rate_bytes / 100,
            t_low: 50.0,
            t_high: 500.0,
            beta: 0.8,
            alpha: 0.875,
            hai_count: 0,
        }
    }

    /// Minimum-RTT normalization base (data-center scale).
    const MIN_RTT_US: f64 = 20.0;
}

impl Algorithm for Timely {
    fn on_report(&mut self, stats: &FlowStats) -> u64 {
        // TIMELY's signal is delay, but on a lossy fabric (WRED, tail
        // drops) delay alone can sit inside the gradient band while the
        // queue overflows — react to loss like every deployment does,
        // at most one cut per RTT
        if self.loss_gate.observe(stats) {
            self.rate = (self.rate / 2).max(self.min_rate);
            return self.rate;
        }
        if stats.rto_fired || stats.fast_retx > 0 {
            return self.rate; // same congestion event: hold
        }
        if stats.rtt_us == 0 {
            return self.rate; // no sample yet
        }
        let rtt = stats.rtt_us as f64;
        let delta = if self.prev_rtt_us > 0.0 {
            rtt - self.prev_rtt_us
        } else {
            0.0
        };
        self.prev_rtt_us = rtt;
        let norm = delta / Self::MIN_RTT_US;
        self.gradient = self.alpha * self.gradient + (1.0 - self.alpha) * norm;

        if rtt < self.t_low {
            self.hai_count += 1;
            let mult = if self.hai_count >= 5 { 5 } else { 1 };
            self.rate = (self.rate + self.ai_step * mult).min(self.line_rate);
        } else if rtt > self.t_high {
            self.hai_count = 0;
            let cut = 1.0 - self.beta * (1.0 - self.t_high / rtt);
            self.rate = ((self.rate as f64 * cut) as u64).max(self.min_rate);
        } else if self.gradient <= 0.0 {
            self.hai_count += 1;
            let mult = if self.hai_count >= 5 { 5 } else { 1 };
            self.rate = (self.rate + self.ai_step * mult).min(self.line_rate);
        } else {
            self.hai_count = 0;
            let cut = 1.0 - self.beta * self.gradient.min(1.0);
            self.rate = ((self.rate as f64 * cut) as u64).max(self.min_rate);
        }
        self.rate
    }

    fn rate(&self) -> u64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "timely"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt(rtt_us: u32) -> FlowStats {
        FlowStats {
            acked_bytes: 100_000,
            rtt_us,
            ..Default::default()
        }
    }

    #[test]
    fn low_rtt_grows_to_line_rate() {
        let line = 5_000_000_000;
        let mut cc = Timely::new(line);
        for _ in 0..200 {
            cc.on_report(&rtt(20));
        }
        assert_eq!(cc.rate(), line);
    }

    #[test]
    fn hai_mode_accelerates_growth() {
        let line = 5_000_000_000;
        let mut a = Timely::new(line);
        let mut gains = Vec::new();
        let mut prev = a.rate();
        for _ in 0..8 {
            let r = a.on_report(&rtt(20));
            gains.push(r - prev);
            prev = r;
        }
        assert!(gains[7] > gains[0], "HAI kicks in after 5 steps: {gains:?}");
    }

    #[test]
    fn high_rtt_cuts_multiplicatively() {
        let line = 5_000_000_000;
        let mut cc = Timely::new(line);
        for _ in 0..50 {
            cc.on_report(&rtt(20));
        }
        let before = cc.rate();
        cc.on_report(&rtt(2_000)); // way above t_high
        assert!(cc.rate() < before / 2, "{} vs {}", cc.rate(), before);
    }

    #[test]
    fn rising_gradient_in_band_decreases() {
        let line = 5_000_000_000;
        let mut cc = Timely::new(line);
        for _ in 0..20 {
            cc.on_report(&rtt(60));
        }
        let before = cc.rate();
        // steeply rising RTT inside [t_low, t_high]
        for r in [100, 150, 200, 260, 330] {
            cc.on_report(&rtt(r));
        }
        assert!(cc.rate() < before);
    }

    #[test]
    fn falling_gradient_in_band_increases() {
        let line = 5_000_000_000;
        let mut cc = Timely::new(line);
        cc.on_report(&rtt(400));
        let before = cc.rate();
        for r in [350, 300, 250, 200, 150] {
            cc.on_report(&rtt(r));
        }
        assert!(cc.rate() > before);
    }

    #[test]
    fn rto_halves() {
        let mut cc = Timely::new(5_000_000_000);
        let before = cc.rate();
        cc.on_report(&FlowStats {
            rto_fired: true,
            ..Default::default()
        });
        assert_eq!(cc.rate(), before / 2);
    }
}
