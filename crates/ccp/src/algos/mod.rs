//! The stock algorithms and the name-keyed registry the control plane
//! selects from (`CtrlConfig`), in the portus style: each algorithm is a
//! factory the runtime instantiates per flow.

pub mod cubic;
pub mod dctcp;
pub mod gca;
pub mod timely;

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use gca::{GenericCongAvoid, Reno, WindowRule, MSS};
pub use timely::Timely;

use crate::algo::Algorithm;

/// Instantiates one per-flow algorithm for a given line rate (bytes/s).
pub type AlgoFactory = Box<dyn Fn(u64) -> Box<dyn Algorithm>>;

/// The algorithm registry: names → factories. Ships with the four stock
/// algorithms; experiments register custom ones with [`Registry::add`].
pub struct Registry {
    entries: Vec<(String, AlgoFactory)>,
}

impl Registry {
    /// The stock registry: dctcp, timely, cubic, reno.
    pub fn builtin() -> Registry {
        let mut r = Registry {
            entries: Vec::new(),
        };
        r.add("dctcp", |line| Box::new(Dctcp::new(line)));
        r.add("timely", |line| Box::new(Timely::new(line)));
        r.add("cubic", |line| {
            Box::new(GenericCongAvoid::new(Cubic::default(), line))
        });
        r.add("reno", |line| Box::new(GenericCongAvoid::new(Reno, line)));
        r
    }

    /// Register (or replace) an algorithm under `name`.
    pub fn add(&mut self, name: &str, factory: impl Fn(u64) -> Box<dyn Algorithm> + 'static) {
        self.entries.retain(|(n, _)| n != name);
        self.entries.push((name.to_string(), Box::new(factory)));
    }

    /// Instantiate `name` for a flow on a `line_rate_bytes` link.
    pub fn create(&self, name: &str, line_rate_bytes: u64) -> Option<Box<dyn Algorithm>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f(line_rate_bytes))
    }

    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_four_selectable_algorithms() {
        let r = Registry::builtin();
        assert_eq!(r.names(), vec!["dctcp", "timely", "cubic", "reno"]);
        for name in ["dctcp", "timely", "cubic", "reno"] {
            let a = r.create(name, 5_000_000_000).expect(name);
            assert_eq!(a.name(), name);
            assert!(a.rate() > 0);
        }
        assert!(r.create("vegas", 1).is_none());
    }

    #[test]
    fn custom_algorithms_register_and_override() {
        let mut r = Registry::builtin();
        r.add("fixed", |line| Box::new(Dctcp::new(line / 2)));
        assert!(r.create("fixed", 1_000).is_some());
        assert_eq!(r.names().len(), 5);
        // replace keeps a single entry
        r.add("fixed", |line| Box::new(Dctcp::new(line)));
        assert_eq!(r.names().len(), 5);
    }
}
