//! DCTCP \[1\] as a rate-based control-plane policy — the paper's default
//! ("DCTCP is our default congestion control policy", §5).
//!
//! The fraction of ECN-marked bytes per window feeds the standard
//! `alpha ← (1−g)·alpha + g·F` estimator; on congestion the rate is cut by
//! `alpha/2`, otherwise it increases additively (with slow-start doubling
//! while no congestion has ever been seen). Loss (fast-retx/RTO) halves
//! the rate. This mirrors TAS's rate-based DCTCP adaptation, which
//! FlexTOE's control plane inherits (§D).

use crate::algo::{Algorithm, FlowStats, LossGate};

#[derive(Clone, Debug)]
pub struct Dctcp {
    rate: u64,
    alpha: f64,
    /// EWMA gain g (RFC 8257 recommends 1/16).
    g: f64,
    line_rate: u64,
    min_rate: u64,
    /// Additive-increase step per report, bytes/s.
    ai_step: u64,
    slow_start: bool,
    loss_gate: LossGate,
}

impl Dctcp {
    pub fn new(line_rate_bytes: u64) -> Dctcp {
        Dctcp {
            rate: line_rate_bytes / 10,
            alpha: 0.0,
            g: 1.0 / 16.0,
            line_rate: line_rate_bytes,
            // Keep the floor high enough that the ACK clock — and with it
            // the event-driven report stream — never starves: a flow cut
            // to the floor still sends ~1 MSS every few hundred µs, so
            // reports keep flowing and additive increase can recover.
            min_rate: (line_rate_bytes / 1000).max(10_000),
            ai_step: line_rate_bytes / 100,
            slow_start: true,
            loss_gate: LossGate::new(),
        }
    }
}

impl Algorithm for Dctcp {
    fn on_report(&mut self, stats: &FlowStats) -> u64 {
        let total = stats.acked_bytes.max(1) as f64;
        let frac = (stats.ecn_bytes as f64 / total).min(1.0);
        self.alpha = (1.0 - self.g) * self.alpha + self.g * frac;

        if self.loss_gate.observe(stats) {
            self.slow_start = false;
            self.rate = (self.rate / 2).max(self.min_rate);
        } else if stats.rto_fired || stats.fast_retx > 0 {
            // same congestion event as a cut just applied: hold
            self.slow_start = false;
        } else if frac > 0.0 {
            self.slow_start = false;
            let cut = 1.0 - self.alpha / 2.0;
            self.rate = ((self.rate as f64 * cut) as u64).max(self.min_rate);
        } else if stats.acked_bytes > 0 {
            self.rate = if self.slow_start {
                (self.rate * 2).min(self.line_rate)
            } else {
                (self.rate + self.ai_step).min(self.line_rate)
            };
        }
        self.rate
    }

    fn rate(&self) -> u64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(acked: u32, ecn: u32) -> FlowStats {
        FlowStats {
            acked_bytes: acked,
            ecn_bytes: ecn,
            ..Default::default()
        }
    }

    #[test]
    fn slow_start_doubles_to_line_rate() {
        let line = 5_000_000_000;
        let mut cc = Dctcp::new(line);
        let mut last = cc.rate();
        for _ in 0..10 {
            let r = cc.on_report(&stats(100_000, 0));
            assert!(r >= last);
            last = r;
        }
        assert_eq!(last, line, "uncongested flow reaches line rate");
    }

    #[test]
    fn ecn_marks_cut_rate_proportionally() {
        let line = 5_000_000_000;
        let mut cc = Dctcp::new(line);
        for _ in 0..10 {
            cc.on_report(&stats(100_000, 0));
        }
        let before = cc.rate();
        // full marking drives alpha up and the rate down hard
        for _ in 0..20 {
            cc.on_report(&stats(100_000, 100_000));
        }
        assert!(cc.rate() < before / 4, "{} !<< {}", cc.rate(), before);
        // light marking cuts gently
        let mut cc2 = Dctcp::new(line);
        for _ in 0..10 {
            cc2.on_report(&stats(100_000, 0));
        }
        let before2 = cc2.rate();
        cc2.on_report(&stats(100_000, 5_000)); // 5% marks
        assert!(cc2.rate() > before2 / 2, "light marking ≠ halving");
    }

    #[test]
    fn loss_halves_rate_and_recovers_additively() {
        let line = 5_000_000_000;
        let mut cc = Dctcp::new(line);
        for _ in 0..10 {
            cc.on_report(&stats(100_000, 0));
        }
        let before = cc.rate();
        let after = cc.on_report(&FlowStats {
            acked_bytes: 0,
            fast_retx: 1,
            ..Default::default()
        });
        assert_eq!(after, before / 2);
        // additive recovery, no more slow start
        let r1 = cc.on_report(&stats(100_000, 0));
        let r2 = cc.on_report(&stats(100_000, 0));
        assert_eq!(r2 - r1, r1 - after);
    }

    #[test]
    fn rate_floor_holds() {
        let mut cc = Dctcp::new(5_000_000_000);
        for _ in 0..100 {
            cc.on_report(&FlowStats {
                rto_fired: true,
                ..Default::default()
            });
        }
        // floor = line/1000: low enough to be a 1000× back-off, high
        // enough that the ACK clock keeps reports (and recovery) alive
        assert_eq!(cc.rate(), 5_000_000);
        // small links keep the absolute floor
        let mut small = Dctcp::new(1_000_000);
        for _ in 0..100 {
            small.on_report(&FlowStats {
                rto_fired: true,
                ..Default::default()
            });
        }
        assert_eq!(small.rate(), 10_000);
    }

    #[test]
    fn idle_flow_keeps_rate() {
        let mut cc = Dctcp::new(5_000_000_000);
        let r = cc.rate();
        // no acks, no marks: nothing changes
        assert_eq!(cc.on_report(&stats(0, 0)), r);
    }

    #[test]
    fn urgent_events_map_to_loss() {
        use crate::algo::Urgent;
        let mut cc = Dctcp::new(5_000_000_000);
        let before = cc.rate();
        assert_eq!(cc.on_urgent(Urgent::Rto), before / 2);
        let before = cc.rate();
        assert_eq!(cc.on_urgent(Urgent::FastRetx), before / 2);
    }
}
