//! Loss recovery in action (§5.3): run the same bulk transfer across a
//! clean and a lossy link and watch go-back-N + the single out-of-order
//! interval recover.
//!
//! ```sh
//! cargo run --release --example loss_recovery
//! ```

use flextoe_apps::{ClientConfig, LoadMode, ServerConfig};
use flextoe_netsim::Faults;
use flextoe_sim::{Duration, Time};

#[path = "../crates/bench/src/harness.rs"]
#[allow(dead_code, unused_imports)]
mod harness;
use harness::*;

fn main() {
    for loss in [0.0, 0.001, 0.01] {
        let opts = PairOpts {
            faults: Faults {
                drop_chance: loss,
                ..Default::default()
            },
            ..Default::default()
        };
        let (sim, res) = run_echo(
            99,
            Stack::FlexToe,
            Stack::FlexToe,
            opts,
            ServerConfig {
                msg_size: 1 << 20,
                resp_size: 32,
                ..Default::default()
            },
            ClientConfig {
                n_conns: 4,
                msg_size: 1 << 20,
                resp_size: 32,
                mode: LoadMode::Closed { pipeline: 1 },
                warmup: Time::from_ms(2),
                connect_spacing: Duration::from_us(5),
                ..Default::default()
            },
            Time::from_ms(40),
        );
        println!(
            "loss {:>5.2}%  goodput {:>12}  fast-retx {:>4}  rto-retx {:>4}  ooo-segs {:>5}",
            loss * 100.0,
            fmt_bps(res.rps * (1u64 << 20) as f64 * 8.0),
            sim.stats.get_named("proto.fast_retx"),
            sim.stats.get_named("proto.rto_retx"),
            sim.stats.get_named("proto.ooo"),
        );
    }
    println!(
        "\n1 MB transfers keep completing under loss: go-back-N + OOO-interval reassembly at work"
    );
}
