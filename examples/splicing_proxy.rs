//! Connection splicing on the NIC (§3.3, Appendix B / Listing 1).
//!
//! ```sh
//! cargo run --release --example splicing_proxy
//! ```
//!
//! A layer-4 proxy spliced entirely in the data path: the control plane
//! programs a BPF hash map with the translation state for an established
//! pair of connections; after that, data segments are rewritten and
//! bounced out the MAC by an eBPF program at the XDP hook — they never
//! touch the proxy host's TCP stack. This demo drives the actual eBPF
//! program (the one the test suite verifies) through the XDP module
//! harness with synthetic traffic and shows the rewrite + the
//! control-flag teardown path.

use flextoe_core::module::{xdp_with_maps, DataPathModule, Hook, ModuleVerdict};
use flextoe_ebpf::programs::{self, splice_key, splice_value, SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE};
use flextoe_ebpf::Map;
use flextoe_sim::Time;
use flextoe_wire::{Ecn, Ip4, MacAddr, SegmentSpec, SegmentView, SeqNum, TcpFlags, TcpOptions};

fn client_frame(seq: u32, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    SegmentSpec {
        src_mac: MacAddr::local(10), // client
        dst_mac: MacAddr::local(1),  // proxy
        src_ip: Ip4::host(10),
        dst_ip: Ip4::host(1),
        src_port: 5555,
        dst_port: 80,
        seq: SeqNum(seq),
        ack: SeqNum(9_000),
        flags,
        window: 0xffff,
        ecn: Ecn::NotEct,
        options: TcpOptions::default(),
        payload_len: payload.len(),
    }
    .emit(payload)
}

fn main() {
    // Build the splice module exactly as the NIC would load it.
    let mut splice_fd = 0;
    let (mut module, maps) = xdp_with_maps("splice", Hook::RxIngress, |m| {
        splice_fd = m.add(Map::hash(SPLICE_KEY_SIZE, SPLICE_VALUE_SIZE, 1024));
        programs::splice(splice_fd)
    });

    // Control plane: an established client<->proxy and proxy<->backend
    // pair gets spliced. seq/ack deltas translate between the two
    // sequence spaces (§B: "based on the connection's initial sequence
    // number").
    let probe = client_frame(1_000, TcpFlags::ACK | TcpFlags::PSH, b"GET /\r\n");
    let key = splice_key(&probe);
    let val = splice_value(
        MacAddr::local(2).0,   // backend MAC
        Ip4::host(2).octets(), // backend IP
        7777,                  // proxy's port towards the backend
        80,                    // backend port
        123_456,               // seq delta
        654_321,               // ack delta
    );
    maps.borrow_mut()
        .get_mut(splice_fd)
        .unwrap()
        .update(&key, &val)
        .unwrap();
    println!(
        "control plane installed splice entry ({} -> {})",
        Ip4::host(10),
        Ip4::host(2)
    );

    // Data path: segments for the spliced 4-tuple are rewritten and
    // transmitted straight out the MAC.
    let mut forwarded = 0;
    for i in 0..5u32 {
        let mut frame = client_frame(1_000 + i * 7, TcpFlags::ACK | TcpFlags::PSH, b"GET /\r\n");
        let (verdict, cost) = module.process(Time::from_us(i as u64), &mut frame);
        assert_eq!(
            verdict,
            ModuleVerdict::Tx,
            "spliced segments bypass the data-path"
        );
        let v = SegmentView::parse(&frame, false).unwrap();
        println!(
            "  spliced #{i}: -> {}:{}  seq {} (delta applied)  [{} eBPF-cycles]",
            v.dst_ip, v.dst_port, v.seq, cost.compute
        );
        assert_eq!(v.dst_ip, Ip4::host(2));
        assert_eq!(v.dst_port, 80);
        assert_eq!(v.seq, SeqNum(1_000 + i * 7 + 123_456));
        forwarded += 1;
    }

    // A non-spliced flow passes through to the normal TCP data-path.
    let other = client_frame(50, TcpFlags::ACK, b"x");
    let mut other_view = SegmentView::parse(&other, false).unwrap();
    other_view.src_port = 1234; // different tuple
    let mut other = SegmentSpec {
        src_mac: MacAddr::local(11),
        dst_mac: MacAddr::local(1),
        src_ip: Ip4::host(11),
        dst_ip: Ip4::host(1),
        src_port: 1234,
        dst_port: 80,
        flags: TcpFlags::ACK,
        payload_len: 1,
        ..Default::default()
    }
    .emit(b"x");
    let (verdict, _) = module.process(Time::from_us(9), &mut other);
    assert_eq!(verdict, ModuleVerdict::Pass);
    println!("  unspliced flow -> XDP_PASS (normal FlexTOE data-path)");
    let _ = other_view;

    // Teardown: FIN atomically removes the map entry and redirects to the
    // control plane.
    let mut fin = client_frame(2_000, TcpFlags::FIN | TcpFlags::ACK, b"");
    let (verdict, _) = module.process(Time::from_us(10), &mut fin);
    assert_eq!(verdict, ModuleVerdict::Redirect);
    assert!(maps.borrow().get(splice_fd).unwrap().is_empty());
    println!("  FIN -> map entry removed atomically, segment redirected to control plane");

    println!("\nspliced {forwarded} segments entirely on the NIC (Listing 1 semantics)");
}
