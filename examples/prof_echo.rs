//! Wall-clock self-profile of the bench-pipeline e2e echo scenario:
//! per-node-type nanoseconds and event counts.
//!
//! ```sh
//! FLEXTOE_SIM_PROF=1 cargo run --release --example prof_echo
//! ```
//!
//! This is the tool that located the Carousel `earliest_work` linear
//! scan (69% of wall time pre-fix). Without the env var the engine skips
//! the per-event timestamps and the table prints empty.

use flextoe_apps::{ClientConfig, LoadMode, ServerConfig};
use flextoe_bench::harness::*;
use flextoe_sim::{Duration, Time};

fn main() {
    let t0 = std::time::Instant::now();
    let (sim, res) = run_echo(
        7,
        Stack::FlexToe,
        Stack::FlexToe,
        PairOpts::default(),
        ServerConfig {
            msg_size: 64,
            resp_size: 64,
            app_cycles: 0,
            ..Default::default()
        },
        ClientConfig {
            n_conns: 16,
            msg_size: 64,
            resp_size: 64,
            mode: LoadMode::Closed { pipeline: 4 },
            warmup: Time::from_ms(2),
            connect_spacing: Duration::from_us(3),
            ..Default::default()
        },
        Time::from_ms(30),
    );
    let wall = t0.elapsed().as_secs_f64();
    let ev = sim.events_processed();
    println!(
        "rps {:.0}  events {}  wall {:.2}s  ({:.2}M ev/s)",
        res.rps,
        ev,
        wall,
        ev as f64 / wall / 1e6
    );
    let total_ns: u64 = sim.prof.iter().map(|p| p.0).sum();
    println!("accounted: {:.2}s", total_ns as f64 / 1e9);
    println!(
        "{:<18} {:>12} {:>10} {:>8} {:>6}",
        "node", "ns", "events", "ns/ev", "%"
    );
    for (name, ns, n) in sim.prof_dump() {
        println!(
            "{:<18} {:>12} {:>10} {:>8} {:>5.1}%",
            name,
            ns,
            n,
            ns / n.max(1),
            ns as f64 / total_ns as f64 * 100.0
        );
    }
    println!("\n{:<12} {:>10} {:>6}", "msg kind", "events", "%");
    for (kind, n) in sim.prof_kind_dump() {
        println!(
            "{:<12} {:>10} {:>5.1}%",
            kind,
            n,
            n as f64 / ev as f64 * 100.0
        );
    }
    let bursts: u64 = sim.prof_burst_hist().iter().map(|&(_, n)| n).sum();
    println!(
        "\n{:<12} {:>10} {:>6}   ({bursts} bursts)",
        "burst len", "count", "%"
    );
    for (len, n) in sim.prof_burst_hist() {
        println!(
            "{:<12} {:>10} {:>5.1}%",
            len,
            n,
            n as f64 / bursts as f64 * 100.0
        );
    }
}
