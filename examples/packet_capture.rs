//! Data-path packet capture (the Table 2 "tcpdump" extension).
//!
//! ```sh
//! cargo run --release --example packet_capture
//! ```
//!
//! Installs a tcpdump module (with a port filter) at the RX-ingress hook
//! of a FlexTOE NIC, runs echo traffic through the pipeline, and writes a
//! Wireshark-compatible `capture.pcap`.

use flextoe_apps::{ClientConfig, LoadMode, ServerConfig};
use flextoe_core::module::{Hook, TcpdumpModule};
use flextoe_core::stages::pre::PreStage;
use flextoe_wire::{SegmentView, TcpPacket, ETH_HDR_LEN, IPV4_HDR_LEN};

#[path = "../crates/bench/src/harness.rs"]
#[allow(dead_code, unused_imports)]
mod harness;
use harness::*;

use flextoe_sim::{Sim, Tick, Time};

fn main() {
    let mut sim = Sim::new(7);
    let opts = PairOpts::default();
    let (ea, eb) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);

    // install tcpdump on the server NIC, filtering on the echo port
    let pre = eb.flextoe.as_ref().unwrap().0.pre;
    let filter = Box::new(|frame: &[u8]| {
        let tcp_off = ETH_HDR_LEN + IPV4_HDR_LEN;
        TcpPacket::new_checked(&frame[tcp_off..])
            .map(|t| t.dst_port() == 7777 || t.src_port() == 7777)
            .unwrap_or(false)
    });
    sim.node_mut::<PreStage>(pre)
        .ingress
        .push(Box::new(TcpdumpModule::with_filter(
            Hook::RxIngress,
            filter,
        )));

    // echo traffic through the pipeline
    let srv = sim.add_node(DynServer::new(
        ServerConfig {
            msg_size: 128,
            resp_size: 128,
            ..Default::default()
        },
        eb.stack_init(Stack::FlexToe, 1),
    ));
    let cli = sim.add_node(DynClient::new(
        ClientConfig {
            server_ip: eb.ip,
            n_conns: 2,
            msg_size: 128,
            resp_size: 128,
            mode: LoadMode::Closed { pipeline: 1 },
            stop_after: Some(50),
            ..Default::default()
        },
        ea.stack_init(Stack::FlexToe, 1),
    ));
    sim.schedule(Time::ZERO, srv, Tick);
    sim.schedule(Time::from_us(20), cli, Tick);
    sim.run_until(Time::from_ms(100));

    // harvest the capture
    let pre_stage = sim.node_mut::<PreStage>(pre);
    let module = pre_stage
        .ingress
        .get_mut("tcpdump")
        .expect("module installed");
    let tcpdump = module
        .as_any_mut()
        .and_then(|a| a.downcast_mut::<TcpdumpModule>())
        .expect("tcpdump module");
    let bytes = tcpdump.pcap.bytes().to_vec();
    std::fs::write("capture.pcap", &bytes).expect("write capture.pcap");
    let records = flextoe_wire::pcap::parse(&bytes).unwrap();
    println!(
        "captured {} frames -> capture.pcap ({} bytes)",
        records.len(),
        bytes.len()
    );
    for rec in records.iter().take(5) {
        let v = SegmentView::parse(&rec.data, false).unwrap();
        println!(
            "  t={}.{:06}s  {}:{} -> {}:{}  seq={} ack={} len={} {:?}",
            rec.sec,
            rec.usec,
            v.src_ip,
            v.src_port,
            v.dst_ip,
            v.dst_port,
            v.seq,
            v.ack,
            v.payload_len,
            v.flags
        );
    }
    assert!(records.len() >= 100, "both requests and ACKs captured");
}
