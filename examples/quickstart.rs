//! Quickstart: two FlexTOE hosts, one echo round-trip, annotated.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the full system of the paper — two simulated Agilio-CX40 NICs
//! running the offloaded TCP data-path, host control planes, libTOE
//! sockets — connects them with a 2 µs link, performs a TCP handshake,
//! echoes a message, and tears the connection down with FINs.

use flextoe_apps::{FlexToeStack, SockEvent, StackApi};
use flextoe_control::{ControlPlane, CtrlConfig};
use flextoe_core::{FlexToeNic, NicConfig, PipeCfg};
use flextoe_netsim::Link;
use flextoe_sim::{cast, try_cast, Ctx, Duration, Msg, Node, NodeId, Sim, Tick, Time};
use flextoe_wire::{Ip4, MacAddr};

type MakeStack = Box<dyn FnOnce(&mut Ctx<'_>, NodeId) -> FlexToeStack>;

/// A minimal server: echoes one message, closes on EOF.
struct Echo {
    make_stack: Option<MakeStack>,
    stack: Option<FlexToeStack>,
    is_server: bool,
    peer_ip: Ip4,
    done: bool,
}

impl Node for Echo {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        // First message: set up libTOE and listen/connect.
        if self.stack.is_none() {
            let mut stack = (self.make_stack.take().unwrap())(ctx, ctx.self_id());
            if self.is_server {
                stack.listen(ctx, 7); // echo port
            } else {
                stack.connect(ctx, self.peer_ip, 7, 0);
            }
            self.stack = Some(stack);
            let _ = try_cast::<Tick>(msg);
            return;
        }
        let stack = self.stack.as_mut().unwrap();
        let Ok(events) = stack.on_msg(ctx, msg) else {
            return;
        };
        for ev in events {
            match ev {
                SockEvent::Connected { conn, .. } => {
                    println!("[{:>9}] client: connected (conn {conn})", ctx.now());
                    stack.send(ctx, conn, b"hello, flextoe!");
                }
                SockEvent::Accepted { conn, peer, .. } => {
                    println!("[{:>9}] server: accepted {}:{}", ctx.now(), peer.0, peer.1);
                    let _ = conn;
                }
                SockEvent::Readable { conn, .. } => {
                    let data = stack.recv(ctx, conn, 1024);
                    let text = String::from_utf8_lossy(&data);
                    if self.is_server {
                        println!("[{:>9}] server: got {:?}, echoing", ctx.now(), text);
                        stack.send(ctx, conn, &data);
                    } else {
                        println!("[{:>9}] client: echo = {:?}", ctx.now(), text);
                        assert_eq!(&*data, b"hello, flextoe!");
                        stack.close(ctx, conn);
                        self.done = true;
                    }
                }
                SockEvent::Eof { conn } => {
                    println!("[{:>9}] peer closed conn {conn}", ctx.now());
                    stack.close(ctx, conn);
                }
                _ => {}
            }
        }
    }
}

fn main() {
    let mut sim = Sim::new(2022);

    // --- two hosts: NICs (the offloaded data-path) + control planes ----
    let ips = [Ip4::host(1), Ip4::host(2)];
    let macs = [MacAddr::local(1), MacAddr::local(2)];
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let ctrl_a = sim.reserve_node();
    let ctrl_b = sim.reserve_node();
    let nic_a = FlexToeNic::build(
        &mut sim,
        PipeCfg::agilio_full(),
        NicConfig {
            mac: macs[0],
            ip: ips[0],
        },
        l_ab,
        ctrl_a,
    );
    let nic_b = FlexToeNic::build(
        &mut sim,
        PipeCfg::agilio_full(),
        NicConfig {
            mac: macs[1],
            ip: ips[1],
        },
        l_ba,
        ctrl_b,
    );
    sim.fill_node(l_ab, Link::new(nic_b.mac, Duration::from_us(2)));
    sim.fill_node(l_ba, Link::new(nic_a.mac, Duration::from_us(2)));
    let mut cp_a = ControlPlane::new(CtrlConfig::default(), nic_a.handle());
    cp_a.add_peer(ips[1], macs[1]);
    let mut cp_b = ControlPlane::new(CtrlConfig::default(), nic_b.handle());
    cp_b.add_peer(ips[0], macs[0]);
    sim.fill_node(ctrl_a, cp_a);
    sim.fill_node(ctrl_b, cp_b);

    // --- applications over libTOE ---------------------------------------
    let (ha, hb) = (nic_a.handle(), nic_b.handle());
    let server = sim.add_node(Echo {
        make_stack: Some(Box::new(move |ctx, app| {
            FlexToeStack::new(ctx, 1, hb.clone(), ctrl_b, app)
        })),
        stack: None,
        is_server: true,
        peer_ip: ips[0],
        done: false,
    });
    let client = sim.add_node(Echo {
        make_stack: Some(Box::new(move |ctx, app| {
            FlexToeStack::new(ctx, 1, ha.clone(), ctrl_a, app)
        })),
        stack: None,
        is_server: false,
        peer_ip: ips[1],
        done: false,
    });

    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(100));

    assert!(sim.node_ref::<Echo>(client).done, "echo did not complete");
    println!(
        "\nsimulated {} in {} events — connection closed cleanly on both sides ({} teardowns)",
        sim.now(),
        sim.events_processed(),
        sim.stats.get_named("ctrl.teardown"),
    );
    let _ = cast::<()>; // silence unused-import lint paths
}
