//! Shared topology builders for the integration tests.

use flextoe_control::{CcAlgo, ControlPlane, CtrlConfig};
use flextoe_core::{FlexToeNic, NicConfig, PipeCfg};
use flextoe_netsim::{Faults, Link};
use flextoe_sim::{Duration, NodeId, Sim};
use flextoe_wire::{Ip4, MacAddr};

/// One FlexTOE host: NIC + control plane (applications attach separately).
pub struct Host {
    pub nic: FlexToeNic,
    pub ctrl: NodeId,
    pub ip: Ip4,
    pub mac: MacAddr,
}

/// Two FlexTOE hosts joined by a pair of unidirectional links with the
/// given propagation delay and fault model.
pub fn two_flextoe_hosts(
    sim: &mut Sim,
    cfg: PipeCfg,
    ctrl_cfg: CtrlConfig,
    propagation: Duration,
    faults: Faults,
) -> (Host, Host) {
    let ips = [Ip4::host(1), Ip4::host(2)];
    let macs = [MacAddr::local(1), MacAddr::local(2)];

    // reserve cross-referenced nodes
    let link_ab = sim.reserve_node();
    let link_ba = sim.reserve_node();
    let ctrl_a = sim.reserve_node();
    let ctrl_b = sim.reserve_node();

    let nic_a = FlexToeNic::build(
        sim,
        cfg.clone(),
        NicConfig {
            mac: macs[0],
            ip: ips[0],
        },
        link_ab,
        ctrl_a,
    );
    let nic_b = FlexToeNic::build(
        sim,
        cfg,
        NicConfig {
            mac: macs[1],
            ip: ips[1],
        },
        link_ba,
        ctrl_b,
    );

    sim.fill_node(link_ab, Link::with_faults(nic_b.mac, propagation, faults));
    sim.fill_node(link_ba, Link::with_faults(nic_a.mac, propagation, faults));

    let mut cp_a = ControlPlane::new(ctrl_cfg.clone(), nic_a.handle());
    cp_a.add_peer(ips[1], macs[1]);
    let mut cp_b = ControlPlane::new(ctrl_cfg, nic_b.handle());
    cp_b.add_peer(ips[0], macs[0]);
    sim.fill_node(ctrl_a, cp_a);
    sim.fill_node(ctrl_b, cp_b);

    (
        Host {
            nic: nic_a,
            ctrl: ctrl_a,
            ip: ips[0],
            mac: macs[0],
        },
        Host {
            nic: nic_b,
            ctrl: ctrl_b,
            ip: ips[1],
            mac: macs[1],
        },
    )
}

/// Default experiment knobs for tests: full Agilio config, DCTCP, 2 µs
/// one-way propagation, no faults.
pub fn default_setup(sim: &mut Sim) -> (Host, Host) {
    two_flextoe_hosts(
        sim,
        PipeCfg::agilio_full(),
        CtrlConfig::default(),
        Duration::from_us(2),
        Faults::default(),
    )
}

/// Default control config with a given congestion-control policy.
pub fn ctrl_with(cc: CcAlgo) -> CtrlConfig {
    CtrlConfig {
        cc,
        ..Default::default()
    }
}
