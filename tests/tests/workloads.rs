//! Workload-level integration: the generic RPC/KV applications running on
//! the FlexTOE stack over the full pipeline.

use flextoe_apps::{
    ClientConfig, FlexToeStack, KvServerApp, KvServerConfig, LoadMode, MemtierApp, MemtierConfig,
    RpcClientApp, RpcServerApp, ServerConfig,
};
use flextoe_integration::{default_setup, Host};
use flextoe_sim::{NodeId, Sim, Tick, Time};

type Client = RpcClientApp<FlexToeStack>;
type Server = RpcServerApp<FlexToeStack>;

fn stack_init(host: &Host, ctx_id: u16) -> flextoe_apps::StackInit<FlexToeStack> {
    let nic = host.nic.handle();
    let ctrl = host.ctrl;
    Box::new(move |ctx, app| FlexToeStack::new(ctx, ctx_id, nic, ctrl, app))
}

fn echo_setup(
    sim: &mut Sim,
    server_cfg: ServerConfig,
    client_cfg: ClientConfig,
) -> (NodeId, NodeId) {
    let (a, b) = default_setup(sim);
    let server = sim.add_node(Server::new(server_cfg, stack_init(&b, 1)));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: b.ip,
            ..client_cfg
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    (server, client)
}

#[test]
fn closed_loop_echo_fixed_work() {
    let mut sim = Sim::new(7);
    let (server, client) = echo_setup(
        &mut sim,
        ServerConfig {
            msg_size: 64,
            resp_size: 64,
            ..Default::default()
        },
        ClientConfig {
            n_conns: 4,
            msg_size: 64,
            resp_size: 64,
            mode: LoadMode::Closed { pipeline: 2 },
            stop_after: Some(2000),
            ..Default::default()
        },
    );
    sim.run_until(Time::from_ms(2000));
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.connected, 4);
    assert_eq!(c.measured, 2000, "fixed work completed");
    assert!(c.latency.median() > 0);
    let s = sim.node_ref::<Server>(server);
    assert!(s.requests >= 2000);
    // 8 in flight at all times, tens-of-us RTTs => at least ~100k ops/s
    assert!(
        c.throughput_rps() > 50_000.0,
        "throughput {} rps",
        c.throughput_rps()
    );
}

#[test]
fn pipelined_large_messages_exercise_windows() {
    // 16 KB echo with 64 KB buffers forces window-limited operation.
    let mut sim = Sim::new(8);
    let (_server, client) = echo_setup(
        &mut sim,
        ServerConfig {
            msg_size: 16 * 1024,
            resp_size: 16 * 1024,
            ..Default::default()
        },
        ClientConfig {
            n_conns: 1,
            msg_size: 16 * 1024,
            resp_size: 16 * 1024,
            mode: LoadMode::Closed { pipeline: 2 },
            stop_after: Some(100),
            ..Default::default()
        },
    );
    sim.run_until(Time::from_ms(2000));
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.measured, 100);
    // goodput should be well into the Gbps range on a 40G link
    assert!(
        c.goodput_bps() > 1e9,
        "goodput {:.2} Gbps",
        c.goodput_bps() / 1e9
    );
}

#[test]
fn open_loop_generator_offers_requested_rate() {
    let mut sim = Sim::new(9);
    let (_server, client) = echo_setup(
        &mut sim,
        ServerConfig::default(),
        ClientConfig {
            n_conns: 8,
            mode: LoadMode::Open {
                rate_rps: 200_000.0,
            },
            warmup: Time::from_ms(2),
            ..Default::default()
        },
    );
    sim.run_until(Time::from_ms(30));
    let c = sim.node_ref::<Client>(client);
    let rate = c.throughput_rps();
    assert!(
        (150_000.0..260_000.0).contains(&rate),
        "offered 200k, got {rate:.0} rps"
    );
}

#[test]
fn kv_store_end_to_end() {
    let mut sim = Sim::new(11);
    let (a, b) = default_setup(&mut sim);
    let server = sim.add_node(KvServerApp::new(
        KvServerConfig::default(),
        stack_init(&b, 1),
    ));
    let client = sim.add_node(MemtierApp::new(
        MemtierConfig {
            server_ip: b.ip,
            n_conns: 4,
            key_space: 50,
            gets_per_set: 2, // set-heavy so GETs hit
            stop_after: Some(1500),
            ..Default::default()
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(Time::from_ms(2000));

    let c = sim.node_ref::<MemtierApp<FlexToeStack>>(client);
    assert_eq!(c.measured, 1500);
    let s = sim.node_ref::<KvServerApp<FlexToeStack>>(server);
    assert!(s.sets > 300, "sets {}", s.sets);
    assert!(s.gets > 600, "gets {}", s.gets);
    // with a tiny keyspace and set-heavy mix, most GETs must hit
    assert!(
        s.hits as f64 / s.gets as f64 > 0.5,
        "hit rate {}/{}",
        s.hits,
        s.gets
    );
    assert_eq!(s.errors, 0);
    assert!(s.core_busy() > flextoe_sim::Duration::ZERO);
}
