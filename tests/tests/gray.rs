//! The gray-failure plane end to end: duplicated segments and ACKs,
//! reorder-inducing jitter, Gilbert–Elliott bursty loss, pool-exhaustion
//! backpressure, and SYN admission control — every scenario must shed
//! load as *counted* degraded modes, keep exactly-once delivery, hold
//! the buffer-conservation invariant through exhaustion and recovery,
//! and never panic. Runs under both engines (CI repeats the suite with
//! `FLEXTOE_SIM_REFERENCE=1`).

use flextoe_apps::{CloseAll, FramedServerConfig, SessionConfig};
use flextoe_bench::faults::buf_balance;
use flextoe_netsim::{Faults, GeParams, Link};
use flextoe_sim::{Duration, NodeId, Sim, Time};
use flextoe_topo::{
    build_fabric, BuiltFabric, DynFramedServer, DynSessionClient, Fabric, FaultEvent, LinkScope,
    Role, Scenario, Stack,
};

/// The chaos-grade 4-leaf/2-spine session fabric (same shape as the
/// `faults` sweep): even hosts run reconnecting sessions toward the
/// server on the next leaf. `req_size` controls how many segments are
/// in flight per request (8 KiB ≈ 6 MSS keeps a window's worth of
/// unACKed data exposed to duplication and reordering).
fn session_fabric(seed: u64, req_size: u32, schedule: Vec<FaultEvent>) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: 4,
        spines: 2,
        hosts_per_leaf: 2,
    };
    let mut sc = Scenario::idle(seed, fabric, Stack::FlexToe);
    sc.opts.min_rto = Duration::from_us(200);
    sc.opts.syn_retry = Duration::from_us(400);
    sc.opts.rto_give_up = Some(3);
    for i in 0..sc.hosts.len() {
        sc.hosts[i].role = if i % 2 == 0 {
            let leaf = i / 2;
            Role::Session {
                cfg: SessionConfig {
                    n_sessions: 4,
                    req_size,
                    resp_size: 512,
                    think: Duration::from_us(20),
                    backoff_base: Duration::from_us(200),
                    backoff_cap: Duration::from_ms(2),
                    warmup: Time::from_us(500),
                    ..Default::default()
                },
                target: ((leaf + 1) % 4) * 2 + 1,
            }
        } else {
            Role::FramedServer(FramedServerConfig::default())
        };
    }
    sc.fault_schedule = schedule;
    sc
}

fn session_nodes(fab: &BuiltFabric) -> Vec<NodeId> {
    fab.hosts.iter().filter_map(|h| h.session()).collect()
}

/// Drain the fabric (`CloseAll` now, run to `until`) and assert the
/// PR 6 conservation contract: every request accounted exactly once, no
/// live work-pool slots, global packet-buffer balance zero, and no
/// corruption leaked into any server's byte stream.
fn drain_and_audit(sim: &mut Sim, fab: &BuiltFabric, until: Time) {
    for &n in &session_nodes(fab) {
        sim.schedule(sim.now(), n, CloseAll);
    }
    sim.run_until(until);
    let (mut issued, mut completed, mut dead) = (0u64, 0u64, 0u64);
    for &n in &session_nodes(fab) {
        let c = sim.node_ref::<DynSessionClient>(n);
        issued += c.issued;
        completed += c.completed;
        dead += c.dead_requests;
        assert_eq!(c.in_flight(), 0, "no session may hold a live request");
    }
    assert!(completed > 0, "the scenario must make progress");
    assert_eq!(issued, completed + dead, "every request accounted once");
    let mut work_in_use = 0;
    for h in &fab.hosts {
        if let Some((nic, _)) = &h.ep.flextoe {
            work_in_use += nic.pool_gauges(sim).work_in_use;
        }
        if let Some(app) = h.app {
            if h.role == flextoe_topo::BuiltRole::Server {
                let s = sim.node_ref::<DynFramedServer>(app);
                assert_eq!(s.bad_frames, 0, "gray faults leaked into a stream");
            }
        }
    }
    assert_eq!(work_in_use, 0, "work-pool slots leaked");
    assert_eq!(buf_balance(sim, fab), 0, "packet buffers leaked");
}

/// Duplicated segments and duplicated ACKs (a 50% duplication storm
/// across *every* link, covering handshakes, data, and ACKs in both
/// directions) are absorbed exactly once: streams stay intact, duplicate
/// handshake deliveries don't double-install connections, and every
/// buffer — original and copy — drains back to a pool.
#[test]
fn duplicate_segments_and_acks_conserve_buffers() {
    let sc = session_fabric(
        31,
        8192,
        vec![
            // from t=0: the connection handshakes themselves run under
            // duplication, exercising the dup-SYN/dup-SYN-ACK paths
            FaultEvent::degrade(
                Time::ZERO,
                LinkScope::All,
                Faults {
                    dup_chance: 0.5,
                    ..Default::default()
                },
            ),
            FaultEvent::degrade(Time::from_ms(2), LinkScope::All, Faults::default()),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(3));

    assert!(
        sim.stats.get_named("link.duplicated") > 0,
        "the storm duplicated frames"
    );
    assert!(
        sim.stats.get_named("ctrl.dup_handshake") > 0,
        "duplicated SYNs reached the control plane and were absorbed"
    );
    drain_and_audit(&mut sim, &fab, Time::from_ms(5));
}

/// Reorder-via-jitter: ±6 µs of per-frame jitter on the fabric links
/// reorders in-flight segments of multi-segment requests; the protocol
/// stages buffer and later accept them (`proto.ooo`), streams stay
/// intact, and the fabric still drains to a zero buffer balance.
#[test]
fn jitter_reorders_segments_and_proto_accepts_ooo() {
    let sc = session_fabric(
        37,
        8192,
        vec![
            FaultEvent::degrade(
                Time::from_us(500),
                LinkScope::Fabric,
                Faults {
                    jitter: Duration::from_us(6),
                    ..Default::default()
                },
            ),
            FaultEvent::degrade(Time::from_ms(2), LinkScope::Fabric, Faults::default()),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(3));

    assert!(
        sim.stats.get_named("proto.ooo") > 0,
        "jitter must reorder segments into the OOO buffer"
    );
    drain_and_audit(&mut sim, &fab, Time::from_ms(5));
}

/// Gilbert–Elliott bursty loss: long good spells, concentrated bad
/// bursts. Retransmission rides out the bursts, goodput keeps flowing
/// after the heal, and the loss is counted (`link.ge_drops`, folded
/// into each link's `dropped`) without breaking conservation.
#[test]
fn ge_burst_loss_retransmits_and_conserves() {
    let sc = session_fabric(
        41,
        8192,
        vec![
            FaultEvent::degrade(
                Time::from_us(500),
                LinkScope::Fabric,
                Faults {
                    ge: Some(GeParams {
                        p_enter: 0.02,
                        p_exit: 0.2,
                        loss_good: 0.0,
                        loss_bad: 0.5,
                    }),
                    ..Default::default()
                },
            ),
            FaultEvent::degrade(Time::from_ms(2), LinkScope::Fabric, Faults::default()),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(2));
    let ge_drops = sim.stats.get_named("link.ge_drops");
    assert!(ge_drops > 0, "the bad state must drop frames");
    let dropped: u64 = fab
        .fabric_links
        .iter()
        .map(|&l| sim.node_ref::<Link>(l).dropped)
        .sum();
    assert!(
        dropped >= ge_drops,
        "GE drops fold into the links' degrade-drop totals"
    );
    assert!(
        sim.stats.get_named("proto.rto_retx") + sim.stats.get_named("proto.fast_retx") > 0,
        "retransmission must recover the bursts"
    );
    // after the heal, sessions keep completing on the clean fabric
    let sessions = session_nodes(&fab);
    let healed: u64 = sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum();
    sim.run_until(Time::from_ms(3));
    let after: u64 = sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum();
    assert!(after > healed, "goodput must resume after the heal");
    drain_and_audit(&mut sim, &fab, Time::from_ms(5));
}

/// Pool-exhaustion backpressure: with the work pool capped far below
/// the offered burst size, RX frames are shed at the sequencer as
/// counted `nic.pool_exhausted` drops instead of growing the slab (or
/// panicking). Retransmission absorbs the sheds, pressure subsides as
/// requests complete, and the conservation invariant holds through
/// exhaustion and recovery.
#[test]
fn pool_exhaustion_sheds_counted_and_recovers() {
    let mut sc = session_fabric(43, 8192, vec![]);
    sc.opts.cfg.work_pool_cap = Some(8);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(2));

    let shed = sim.stats.get_named("nic.pool_exhausted");
    assert!(shed > 0, "the capped pool must shed RX frames");
    let sessions = session_nodes(&fab);
    let mid: u64 = sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum();
    assert!(mid > 0, "the fabric must make progress while shedding");
    // recovery: completions keep accumulating under sustained pressure
    sim.run_until(Time::from_ms(3));
    let late: u64 = sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum();
    assert!(late > mid, "backpressure must degrade, not wedge");
    drain_and_audit(&mut sim, &fab, Time::from_ms(6));
}

/// SYN admission control: with the per-NIC connection cap below the
/// offered session count, surplus passive opens are refused with an RST
/// (counted in `ctrl.admission_refused`) instead of wedging the
/// handshake; refused clients observe clean connect failures and keep
/// retrying, admitted sessions complete, and the fabric drains
/// conserved.
#[test]
fn syn_admission_cap_refuses_with_rst_not_wedge() {
    let mut sc = session_fabric(47, 512, vec![]);
    // each server NIC sees 4 incoming sessions; admit only 2
    sc.opts.max_conns = Some(2);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(3));

    assert!(
        sim.stats.get_named("ctrl.admission_refused") > 0,
        "the cap must refuse surplus SYNs"
    );
    let (mut completed, mut connect_failures) = (0u64, 0u64);
    for &n in &session_nodes(&fab) {
        let c = sim.node_ref::<DynSessionClient>(n);
        completed += c.completed;
        connect_failures += c.connect_failures;
    }
    assert!(completed > 0, "admitted sessions must complete requests");
    assert!(
        connect_failures > 0,
        "refused sessions must fail cleanly, not hang"
    );
    drain_and_audit(&mut sim, &fab, Time::from_ms(6));
}
