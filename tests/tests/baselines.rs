//! Baseline-stack integration: Linux/TAS/Chelsio models run the *same*
//! application binaries, interoperate with each other and with FlexTOE on
//! the wire (§5.1 Fig. 9 runs all server×client combinations).

use flextoe_apps::{ClientConfig, LoadMode, RpcClientApp, RpcServerApp, ServerConfig};
use flextoe_hoststack::{build_host, host_socket_api, HostSocketApi, StackKind};
use flextoe_netsim::Link;
use flextoe_sim::{Duration, NodeId, Sim, Tick, Time};
use flextoe_wire::{Ip4, MacAddr};

type Client = RpcClientApp<HostSocketApi>;
type Server = RpcServerApp<HostSocketApi>;

/// Two baseline hosts of the given kinds joined by 2 µs links.
fn two_hosts(sim: &mut Sim, a: StackKind, b: StackKind) -> (NodeId, NodeId) {
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let host_a = build_host(sim, a, MacAddr::local(1), Ip4::host(1), l_ab);
    let host_b = build_host(sim, b, MacAddr::local(2), Ip4::host(2), l_ba);
    sim.fill_node(l_ab, Link::new(host_b, Duration::from_us(2)));
    sim.fill_node(l_ba, Link::new(host_a, Duration::from_us(2)));
    sim.node_mut::<flextoe_hoststack::HostStackNode>(host_a)
        .add_peer(Ip4::host(2), MacAddr::local(2));
    sim.node_mut::<flextoe_hoststack::HostStackNode>(host_b)
        .add_peer(Ip4::host(1), MacAddr::local(1));
    (host_a, host_b)
}

fn run_combo(
    server_kind: StackKind,
    client_kind: StackKind,
    msg: u32,
    rounds: u64,
) -> (Sim, NodeId) {
    let mut sim = Sim::new(21);
    let (ha, hb) = two_hosts(&mut sim, client_kind, server_kind);
    let server = sim.add_node(Server::new(
        ServerConfig {
            msg_size: msg,
            resp_size: msg,
            echo_data: true,
            ..Default::default()
        },
        Box::new(move |_ctx, app| host_socket_api(server_kind, hb, app)),
    ));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: Ip4::host(2),
            n_conns: 2,
            msg_size: msg,
            resp_size: msg,
            mode: LoadMode::Closed { pipeline: 1 },
            stop_after: Some(rounds),
            ..Default::default()
        },
        Box::new(move |_ctx, app| host_socket_api(client_kind, ha, app)),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(3000));
    (sim, client)
}

#[test]
fn linux_to_linux_echo() {
    let (sim, client) = run_combo(StackKind::Linux, StackKind::Linux, 64, 500);
    assert_eq!(sim.node_ref::<Client>(client).measured, 500);
}

#[test]
fn tas_to_tas_echo() {
    let (sim, client) = run_combo(StackKind::Tas, StackKind::Tas, 64, 500);
    assert_eq!(sim.node_ref::<Client>(client).measured, 500);
}

#[test]
fn chelsio_to_chelsio_echo() {
    let (sim, client) = run_combo(StackKind::Chelsio, StackKind::Chelsio, 64, 500);
    assert_eq!(sim.node_ref::<Client>(client).measured, 500);
}

#[test]
fn cross_stack_combinations_interoperate() {
    for (s, c) in [
        (StackKind::Linux, StackKind::Tas),
        (StackKind::Tas, StackKind::Chelsio),
        (StackKind::Chelsio, StackKind::Linux),
    ] {
        let (sim, client) = run_combo(s, c, 128, 100);
        assert_eq!(
            sim.node_ref::<Client>(client).measured,
            100,
            "{:?} server with {:?} client failed",
            s,
            c
        );
    }
}

#[test]
fn multi_segment_transfer_on_baselines() {
    let (sim, client) = run_combo(StackKind::Tas, StackKind::Tas, 8192, 50);
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.measured, 50);
    assert!(c.goodput_bps() > 1e8);
}

#[test]
fn tas_latency_below_linux() {
    // Fig. 9/11: Linux median RPC latency is several times everyone else's.
    let (sim_tas, c_tas) = run_combo(StackKind::Tas, StackKind::Tas, 64, 300);
    let (sim_lnx, c_lnx) = run_combo(StackKind::Linux, StackKind::Linux, 64, 300);
    let tas = sim_tas.node_ref::<Client>(c_tas).latency.median();
    let lnx = sim_lnx.node_ref::<Client>(c_lnx).latency.median();
    assert!(
        lnx > tas,
        "linux median {lnx}ns should exceed tas median {tas}ns"
    );
}

/// FlexTOE server with a Linux client — the Fig. 9 interop matrix.
#[test]
fn flextoe_interoperates_with_linux_on_the_wire() {
    use flextoe_apps::FlexToeStack;
    use flextoe_control::{ControlPlane, CtrlConfig};
    use flextoe_core::{FlexToeNic, NicConfig, PipeCfg};

    let mut sim = Sim::new(33);
    // host A: Linux; host B: FlexTOE
    let l_ab = sim.reserve_node();
    let l_ba = sim.reserve_node();
    let ctrl_b = sim.reserve_node();
    let host_a = build_host(
        &mut sim,
        StackKind::Linux,
        MacAddr::local(1),
        Ip4::host(1),
        l_ab,
    );
    let nic_b = FlexToeNic::build(
        &mut sim,
        PipeCfg::agilio_full(),
        NicConfig {
            mac: MacAddr::local(2),
            ip: Ip4::host(2),
        },
        l_ba,
        ctrl_b,
    );
    sim.fill_node(l_ab, Link::new(nic_b.mac, Duration::from_us(2)));
    sim.fill_node(l_ba, Link::new(host_a, Duration::from_us(2)));
    let mut cp = ControlPlane::new(CtrlConfig::default(), nic_b.handle());
    cp.add_peer(Ip4::host(1), MacAddr::local(1));
    sim.fill_node(ctrl_b, cp);
    sim.node_mut::<flextoe_hoststack::HostStackNode>(host_a)
        .add_peer(Ip4::host(2), MacAddr::local(2));

    let nic_handle = nic_b.handle();
    let server = sim.add_node(RpcServerApp::<FlexToeStack>::new(
        ServerConfig {
            msg_size: 256,
            resp_size: 256,
            echo_data: true,
            ..Default::default()
        },
        Box::new(move |ctx, app| FlexToeStack::new(ctx, 1, nic_handle, ctrl_b, app)),
    ));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: Ip4::host(2),
            n_conns: 1,
            msg_size: 256,
            resp_size: 256,
            mode: LoadMode::Closed { pipeline: 1 },
            stop_after: Some(200),
            ..Default::default()
        },
        Box::new(move |_ctx, app| host_socket_api(StackKind::Linux, host_a, app)),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(3000));
    assert_eq!(
        sim.node_ref::<Client>(client).measured,
        200,
        "FlexTOE<->Linux interop failed"
    );
}
