//! Sharded conservative-PDES engine vs the monolithic engine.
//!
//! The determinism contract (ARCHITECTURE.md "Sharded execution") says a
//! sharded run is *byte-identical* to the single-shard run under ANY
//! partitioning: cross-shard arrivals replay in exact global
//! `(time, seq)` order, per-node RNG streams are stable no matter which
//! shard hosts the node, and ghost-dropped externals keep the external
//! sequence numbering aligned. These tests drive that contract two ways:
//! proptest-style random node graphs under random group→shard maps
//! (including the degenerate 1-shard cut and one-node-per-shard), and
//! the real topo-level scale/faults scenarios.
//!
//! Engine coverage: the whole file is engine-agnostic — CI runs it once
//! on the burst engine and once with `FLEXTOE_SIM_REFERENCE=1` (the
//! Heap + no-burst reference configuration), so both engines prove the
//! same identity.

use flextoe_bench::faults::{run_faults_point, FaultsOutcome, FaultsPlan};
use flextoe_bench::scale::{run_scale_point, ScaleOutcome};
use flextoe_shard::{Partition, ShardedSim};
use flextoe_sim::{cast, Ctx, Duration, Msg, Node, Sim, Time};
use flextoe_topo::Stack;
use flextoe_wire::Frame;

// ---------------------------------------------------------------------
// Random node graphs: groups with arbitrary internal edges (including
// zero-delay same-slot sends); inter-group edges only carry Frames with
// delay ≥ the lookahead, mirroring the link-cut discipline
// `partition_fabric` enforces on real fabrics.
// ---------------------------------------------------------------------

/// Minimum inter-group (cuttable) edge delay — the partition lookahead.
const LOOKAHEAD_NS: u64 = 400;

/// Test-local deterministic generator for the *structure* (groups,
/// edges, kick schedule). Every shard worker rebuilds the same graph
/// from the same seed, exactly like bench shards rebuild one scenario.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Logs every arrival `(time, payload, per-node rng draw)` and forwards
/// the frame along its next out-edge until its budget runs out. The rng
/// draw is the satellite check for per-node RNG stream stability: if a
/// node's stream depended on which shard hosts it, the logged draws
/// would diverge from the monolithic run.
struct Chatter {
    edges: Vec<(usize, u64)>,
    rr: usize,
    budget: u32,
    log: Vec<(u64, u8, u32)>,
}

impl Node for Chatter {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let frame = match msg {
            Msg::Frame(f) => f,
            other => *cast::<Frame>(other),
        };
        let draw = ctx.rng.next_u32();
        self.log.push((ctx.now().ps(), frame.bytes[0], draw));
        if self.budget == 0 || self.edges.is_empty() {
            return;
        }
        self.budget -= 1;
        let (to, delay_ns) = self.edges[self.rr % self.edges.len()];
        self.rr += 1;
        let mut next = frame;
        next.bytes[0] = next.bytes[0].wrapping_add(1);
        ctx.send(to, Duration::from_ns(delay_ns), Msg::Frame(next));
    }
}

/// Group sizes for `seed`: every third seed uses singleton groups so
/// the one-group-per-shard map degenerates to one *node* per shard.
fn group_sizes(seed: u64) -> Vec<usize> {
    let mut rng = XorShift::new(seed);
    let n_groups = 2 + (rng.below(7) as usize); // 2..=8
    (0..n_groups)
        .map(|_| {
            if seed.is_multiple_of(3) {
                1
            } else {
                1 + rng.below(3) as usize // 1..=3
            }
        })
        .collect()
}

/// Build the random graph for `seed`. Identical for every caller with
/// the same seed (structure comes from the test rng, runtime randomness
/// from the sim's per-node streams). Returns the sim plus each node's
/// group index.
fn build_graph(seed: u64) -> (Sim, Vec<u32>) {
    let sizes = group_sizes(seed);
    let mut rng = XorShift::new(seed);
    let _ = rng.below(7); // re-consume the n_groups draw
    for _ in &sizes {
        let _ = rng.below(3); // re-consume the size draws (seed%3==0 drew too)
    }
    let n_groups = sizes.len();
    let mut group_of = Vec::new();
    for (g, &sz) in sizes.iter().enumerate() {
        for _ in 0..sz {
            group_of.push(g as u32);
        }
    }
    let n = group_of.len();

    // Edge lists: intra-group edges may be zero-delay (same-slot direct
    // drain in the burst engine); inter-group edges respect lookahead.
    let mut edges: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (node, item) in edges.iter_mut().enumerate() {
        let g = group_of[node] as usize;
        let n_edges = 1 + rng.below(3);
        for _ in 0..n_edges {
            let intra: Vec<usize> = (0..n).filter(|&m| group_of[m] as usize == g).collect();
            if rng.below(2) == 0 && intra.len() > 1 {
                let to = intra[rng.below(intra.len() as u64) as usize];
                item.push((to, rng.below(200))); // 0..200 ns, zero included
            } else if n_groups > 1 {
                let to = loop {
                    let m = rng.below(n as u64) as usize;
                    if group_of[m] as usize != g {
                        break m;
                    }
                };
                item.push((to, LOOKAHEAD_NS + rng.below(2 * LOOKAHEAD_NS)));
            }
        }
    }

    let mut sim = Sim::new(seed);
    for item in edges.into_iter() {
        let budget = 20 + rng.below(30) as u32;
        sim.add_node(Chatter {
            edges: item,
            rr: 0,
            budget,
            log: Vec::new(),
        });
    }

    // External kick schedule (band-0 events): early kicks start the
    // chatter, later ones land mid-run like a fault schedule would.
    // Every shard schedules ALL kicks — ghosts are dropped at the
    // ownership mask but still consume an external sequence number, so
    // the numbering stays aligned with the monolithic run.
    let n_kicks = 8 + rng.below(8);
    for k in 0..n_kicks {
        let node = rng.below(n as u64) as usize;
        let at = if k < 4 {
            rng.below(2_000)
        } else {
            rng.below(400_000)
        };
        sim.schedule(
            Time::from_ns(at),
            node,
            Msg::Frame(Frame::raw(vec![(k as u8) << 4; 8])),
        );
    }
    (sim, group_of)
}

fn harvest_logs(sim: &Sim) -> Vec<Vec<(u64, u8, u32)>> {
    (0..sim.n_nodes())
        .map(|id| {
            if sim.owns(id) {
                sim.node_ref::<Chatter>(id).log.clone()
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// Run `seed`'s graph monolithically and under `map` (group → shard),
/// and assert the per-node logs and total event count are identical.
fn check_map(seed: u64, n_shards: usize, map: Vec<u32>) {
    let deadline = Time::from_ms(1);
    let (mut mono, group_of) = build_graph(seed);
    mono.run_until(deadline);
    let want = harvest_logs(&mono);
    let want_events = mono.events_processed();

    let owner: Vec<u32> = group_of.iter().map(|&g| map[g as usize]).collect();
    let mut sharded = ShardedSim::launch(n_shards, move |_idx| {
        let (sim, group_of) = build_graph(seed);
        let partition = Partition {
            owner: group_of.iter().map(|&g| map[g as usize]).collect(),
            lookahead: Duration::from_ns(LOOKAHEAD_NS),
        };
        (sim, (), partition)
    });
    sharded.run_until(deadline);
    let per_shard = sharded.each(|_idx, sim, _| harvest_logs(sim));
    let merged: Vec<Vec<(u64, u8, u32)>> = (0..want.len())
        .map(|node| per_shard[owner[node] as usize][node].clone())
        .collect();
    assert_eq!(
        merged, want,
        "seed {seed} / {n_shards} shards: delivery logs diverged"
    );
    assert_eq!(
        sharded.total_events(),
        want_events,
        "seed {seed} / {n_shards} shards: event counts diverged"
    );
}

#[test]
fn random_partitions_byte_identical_to_monolithic() {
    for seed in 0..8u64 {
        let n_groups = group_sizes(seed).len();
        let mut rng = XorShift::new(seed ^ 0xDEAD_BEEF);

        // Degenerate 1-shard cut.
        check_map(seed, 1, vec![0; n_groups]);
        // One group per shard (singleton groups on every third seed
        // make this one *node* per shard).
        check_map(seed, n_groups, (0..n_groups as u32).collect());
        // Two random maps at random shard counts 2..=8 (shards may end
        // up empty — owning nothing but ghosts must also be exact).
        for _ in 0..2 {
            let n_shards = 2 + rng.below(7) as usize;
            let map: Vec<u32> = (0..n_groups)
                .map(|_| rng.below(n_shards as u64) as u32)
                .collect();
            check_map(seed, n_shards, map);
        }
    }
}

// ---------------------------------------------------------------------
// Topo-level: the real leaf-spine scale point and a chaos row, sharded
// vs monolithic, digests compared field-for-field.
// ---------------------------------------------------------------------

/// Every deterministic field of a scale outcome, formatted; `sync` is
/// deliberately excluded (its `blocked_ns` is wall clock).
fn scale_digest(o: &ScaleOutcome) -> String {
    format!(
        "{} conns={} offered={:?} achieved={:?} goodput={:?} p50={:?} p99={:?} \
         jain={:?} backlog={} gauges={:?} spines={:?} events={}",
        o.stack,
        o.conns,
        o.offered_rps,
        o.achieved_rps,
        o.goodput_gbps,
        o.p50_us,
        o.p99_us,
        o.jain_hosts,
        o.backlog,
        o.gauges,
        o.spine_frames,
        o.sim_events
    )
}

/// Every deterministic field of a faults outcome (everything except
/// the wall-clock half of `sync`).
fn faults_digest(o: &FaultsOutcome) -> String {
    format!(
        "{} timeline={:?} pre={:?} dip={:?} frac={:?} rec_us={} rec={} p50={:?} p99={:?} \
         issued={} completed={} dead={} aborted={} peer_closed={} reconnects={} \
         connect_failures={} rto={} ctrl_aborts={} reroutes={} blackholed={} \
         dead_drops={} down_drops={} degrade={} in_flight={} gauges={:?} \
         buf_delta={} conserved={} consistent={} per_switch={} events={}",
        o.name,
        o.timeline,
        o.pre_rps,
        o.dip_rps,
        o.dip_frac,
        o.recover_us,
        o.recovered,
        o.p50_us,
        o.p99_us,
        o.issued,
        o.completed,
        o.dead_requests,
        o.aborted_conns,
        o.peer_closed,
        o.reconnects,
        o.connect_failures,
        o.rto_fired,
        o.ctrl_aborts,
        o.reroutes,
        o.blackholed,
        o.dead_drops,
        o.down_drops,
        o.degrade_drops,
        o.in_flight_end,
        o.gauges,
        o.buf_delta,
        o.conserved,
        o.counters_consistent,
        o.per_switch_json,
        o.sim_events
    )
}

#[test]
fn scale_point_sharded_matches_monolithic() {
    let plan = flextoe_bench::scale::ScalePlan::smoke();
    let mono = run_scale_point(4242, Stack::FlexToe, 16, &plan, 1);
    assert!(mono.sync.is_none(), "monolithic path must not sync");
    let want = scale_digest(&mono);
    for shards in [2usize, 4] {
        let got = run_scale_point(4242, Stack::FlexToe, 16, &plan, shards);
        assert_eq!(scale_digest(&got), want, "{shards} shards diverged");
        let sync = got.sync.expect("sharded path records sync stats");
        assert!(sync.windows > 0);
        assert_eq!(sync.events.len(), shards);
        assert_eq!(
            sync.events.iter().sum::<u64>(),
            got.sim_events,
            "per-shard events must sum to the monolithic count"
        );
    }
}

#[test]
fn faults_row_sharded_matches_monolithic_and_conserves() {
    let plan = FaultsPlan::smoke();
    let row = plan.rows[0].clone();
    let mono = run_faults_point(99, &row, &plan, 1);
    assert!(mono.conserved, "monolithic chaos row must conserve");
    let want = faults_digest(&mono);
    let got = run_faults_point(99, &row, &plan, 2);
    assert_eq!(faults_digest(&got), want, "sharded chaos row diverged");
    assert!(
        got.conserved,
        "global conservation must hold summed over shard pools"
    );
    let sync = got.sync.expect("sharded path records sync stats");
    assert!(sync.windows > 0);
}
