//! The datacenter-fabric subsystem end to end: leaf-spine and fat-tree
//! scenarios built from declarative specs, ECMP path spreading, byte-
//! identical determinism of the whole `scale` sweep, and declarative
//! fault schedules on fabric links.

use flextoe_apps::{FramedServerConfig, OpenLoopConfig, SizeDist};
use flextoe_bench::scale::{run_scale, run_scale_jobs, scale_json, ScalePlan};
use flextoe_netsim::{Faults, Link, Switch};
use flextoe_sim::{Sim, Time};
use flextoe_topo::{
    build_fabric, BuiltRole, DynFramedServer, DynOpenLoopClient, Fabric, FaultEvent, LinkScope,
    Role, Scenario, Stack,
};

/// A small leaf-spine scenario: every even host open-loops to the server
/// on the next leaf (the same pattern the scale sweep uses).
fn mini_leaf_spine(seed: u64) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: 4,
        spines: 2,
        hosts_per_leaf: 2,
    };
    let mut sc = Scenario::idle(seed, fabric, Stack::FlexToe);
    for i in 0..sc.hosts.len() {
        sc.hosts[i].role = if i % 2 == 0 {
            let leaf = i / 2;
            Role::OpenLoop {
                cfg: OpenLoopConfig {
                    n_conns: 8,
                    rate_rps: 50_000.0,
                    req_size: SizeDist::Fixed(64),
                    resp_size: SizeDist::Uniform { lo: 64, hi: 2048 },
                    warmup: Time::from_us(500),
                    ..Default::default()
                },
                target: ((leaf + 1) % 4) * 2 + 1,
            }
        } else {
            Role::FramedServer(FramedServerConfig::default())
        };
    }
    sc
}

/// Traffic between leaves spreads over *both* spines (ECMP), and every
/// client's RPCs complete across the fabric.
#[test]
fn leaf_spine_ecmp_spreads_flows_across_spines() {
    let sc = mini_leaf_spine(3);
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(3));

    for h in &fab.hosts {
        match h.role {
            BuiltRole::Client => {
                let c = sim.node_ref::<DynOpenLoopClient>(h.app.unwrap());
                assert_eq!(c.connected, 8, "all conns established");
                assert!(c.measured > 20, "client measured {}", c.measured);
            }
            BuiltRole::Server => {
                let s = sim.node_ref::<DynFramedServer>(h.app.unwrap());
                assert_eq!(s.bad_frames, 0, "framing intact through the fabric");
                assert!(s.requests > 0);
            }
            BuiltRole::Idle | BuiltRole::Session => {}
        }
    }
    // both spines forwarded traffic, each via the L3 ECMP route path
    for s in 4..6 {
        let sw = sim.node_ref::<Switch>(fab.switches[s]);
        assert!(sw.routed > 100, "spine {s} routed {} frames", sw.routed);
        assert_eq!(sw.flooded, 0, "no unroutable frames on spine {s}");
    }
    // and the per-spine split is genuinely shared, not all-one-path
    let spine_tx: Vec<u64> = (4..6)
        .map(|s| {
            let sw = sim.node_ref::<Switch>(fab.switches[s]);
            (0..4).map(|p| sw.port_stats(p).0).sum()
        })
        .collect();
    assert!(
        spine_tx.iter().all(|&t| t > 0),
        "ECMP must use both spines: {spine_tx:?}"
    );
}

/// A 4-ary fat-tree delivers across pods (through the core tier) with the
/// same declarative spec.
#[test]
fn fat_tree_delivers_cross_pod_through_core() {
    let fabric = Fabric::FatTree { k: 4 };
    let mut sc = Scenario::idle(5, fabric, Stack::FlexToe);
    // host 0 (pod 0) open-loops to host 15 (pod 3); everyone else idles
    sc.hosts[0].role = Role::OpenLoop {
        cfg: OpenLoopConfig {
            n_conns: 4,
            rate_rps: 50_000.0,
            req_size: SizeDist::Fixed(64),
            resp_size: SizeDist::Fixed(512),
            ..Default::default()
        },
        target: 15,
    };
    sc.hosts[15].role = Role::FramedServer(FramedServerConfig::default());
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    assert_eq!(fab.switches.len(), 20, "4 pods x (2+2) + 4 cores");
    sim.run_until(Time::from_ms(2));

    let c = sim.node_ref::<DynOpenLoopClient>(fab.hosts[0].app.unwrap());
    assert_eq!(c.connected, 4);
    assert!(c.measured > 20, "cross-pod RPCs completed: {}", c.measured);
    let s = sim.node_ref::<DynFramedServer>(fab.hosts[15].app.unwrap());
    assert_eq!(s.bad_frames, 0);
    // cross-pod traffic must transit at least one core switch
    let core_routed: u64 = (16..20)
        .map(|i| sim.node_ref::<Switch>(fab.switches[i]).routed)
        .sum();
    assert!(core_routed > 50, "core tier routed {core_routed} frames");
}

/// Two runs of the same fabric seed produce identical results; a
/// different seed shifts ECMP path selection.
#[test]
fn fabric_runs_are_deterministic_per_seed() {
    let run = |seed: u64| -> (u64, Vec<u64>) {
        let sc = mini_leaf_spine(seed);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        sim.run_until(Time::from_ms(2));
        let measured = fab
            .hosts
            .iter()
            .filter_map(|h| h.client())
            .map(|app| sim.node_ref::<DynOpenLoopClient>(app).measured)
            .sum();
        let spine_split = (4..6)
            .flat_map(|s| {
                let sw = sim.node_ref::<Switch>(fab.switches[s]);
                (0..4).map(move |p| sw.port_stats(p).0).collect::<Vec<_>>()
            })
            .collect();
        (measured, spine_split)
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b, "same seed, same everything");
    let c = run(12);
    assert_ne!(
        a.1, c.1,
        "a different seed should re-salt ECMP and shift the spine split"
    );
}

/// The whole `scale` sweep serializes byte-identically for one seed —
/// the acceptance contract on `BENCH_scale.json`.
#[test]
fn scale_sweep_json_is_byte_identical_per_seed() {
    let plan = ScalePlan::smoke();
    let a = scale_json(17, &plan, &run_scale(17, &plan));
    let b = scale_json(17, &plan, &run_scale(17, &plan));
    assert_eq!(a, b);
    assert!(a.contains("\"fabric\": \"leafspine-4x2\""));
}

/// The parallel runner is a pure scheduling change: any `--jobs` value
/// merges results in configuration order and serializes byte-identically
/// to the serial reference run (each point builds its own `Sim`).
#[test]
fn parallel_scale_sweep_is_byte_identical_to_serial() {
    let plan = ScalePlan::smoke();
    let serial = scale_json(17, &plan, &run_scale_jobs(17, &plan, 1));
    for jobs in [2, 4, 8] {
        let par = scale_json(17, &plan, &run_scale_jobs(17, &plan, jobs));
        assert_eq!(serial, par, "jobs={jobs} diverged from the serial run");
    }
}

/// Regression guard for the cache-gauge column of `BENCH_scale.json`:
/// a hot, reused connection set large enough to overflow the per-island
/// CLS (conns/NIC > 2048, i.e. ≥ 2 contenders per direct-mapped slot on
/// the same island) must report nonzero EMEM-SRAM hits. The sweep once
/// reported `conn_cache_sram_hits: 0` on every row: its 12 ms window
/// offered each connection at most one request, so no access ever
/// *revisited* a connection after its CAM/CLS residency was evicted.
/// (Below that size the zero is real: dense id allocation keeps the
/// direct-mapped CLS conflict-free, exactly the paper's §4.1 claim.)
#[test]
fn scale_point_beyond_cls_capacity_reports_sram_hits() {
    let mut plan = ScalePlan::full();
    plan.duration = Time::from_ms(24);
    let r = flextoe_bench::scale::run_scale_one(17, Stack::FlexToe, 8192, &plan);
    assert!(
        r.gauges.cache_sram_hits > 0,
        "8192-conn sweep point must engage the EMEM-SRAM tier, gauges: {:?}",
        r.gauges
    );
    assert!(
        r.gauges.cache_dram_accesses >= 16_384,
        "every (nic, conn) pays at least its cold miss"
    );
}

/// The full sweep plan satisfies the experiment contract: at least four
/// connection counts, reaching at least 4096 flows.
#[test]
fn full_scale_plan_meets_sweep_contract() {
    let plan = ScalePlan::full();
    let flex_counts: Vec<u32> = plan
        .points
        .iter()
        .filter(|(s, _)| *s == Stack::FlexToe)
        .map(|&(_, c)| c)
        .collect();
    assert!(flex_counts.len() >= 4, "{flex_counts:?}");
    assert!(*flex_counts.iter().max().unwrap() >= 4096);
    // and it records more than one stack
    assert!(plan.points.iter().any(|(s, _)| *s != Stack::FlexToe));
}

/// A declarative fault schedule: fabric links degrade mid-run and heal;
/// recovery (retransmission) keeps the RPC stream alive end to end.
#[test]
fn fault_schedule_degrades_and_heals_fabric_links() {
    let mut sc = mini_leaf_spine(9);
    sc.fault_schedule = vec![
        FaultEvent::degrade(
            Time::from_us(800),
            LinkScope::Fabric,
            Faults {
                drop_chance: 0.05,
                ..Default::default()
            },
        ),
        FaultEvent::degrade(Time::from_us(1600), LinkScope::Fabric, Faults::default()),
    ];
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(4));
    let dropped: u64 = fab
        .fabric_links
        .iter()
        .map(|&l| sim.node_ref::<Link>(l).dropped)
        .sum();
    assert!(dropped > 0, "the degradation window dropped frames");
    for h in &fab.hosts {
        if let Some(app) = h.client() {
            let c = sim.node_ref::<DynOpenLoopClient>(app);
            assert!(
                c.measured > 20,
                "traffic survived the fault window: {}",
                c.measured
            );
        }
    }
}
