//! The telemetry plane end to end: fast-path sketches feeding the
//! collector over real report frames, exactness of the merged views
//! against per-switch ground truth, the count-min no-underestimate
//! guarantee surviving the sweep/merge pipeline, sketch loss under a
//! switch kill (while truth survives — the differential measurement),
//! default-off wiring, and byte-identity of the `telemetry` sweep
//! across `--jobs` values.

use flextoe_bench::telemetry::{run_telemetry_jobs, telemetry_json, TelemetryPlan};
use flextoe_netsim::{Collector, Switch, TelemetrySpec};
use flextoe_sim::{Sim, Time};
use flextoe_topo::{build_fabric, BuiltFabric, Fabric, FaultEvent, FaultTarget, Scenario, Stack};
use flextoe_wire::{Frame, Ip4, MacAddr, SegmentSpec};

/// A small idle fabric with the telemetry plane wired: 2 leaves, 1
/// spine, 1 host per leaf (hosts stay idle; tests inject frames
/// directly into the switches).
fn telemetry_fabric(seed: u64, spec: TelemetrySpec) -> (Sim, BuiltFabric) {
    let mut sc = Scenario::idle(
        seed,
        Fabric::LeafSpine {
            leaves: 2,
            spines: 1,
            hosts_per_leaf: 1,
        },
        Stack::FlexToe,
    );
    sc.telemetry = Some(spec);
    let mut sim = Sim::new(seed);
    let fab = build_fabric(&mut sim, &sc);
    (sim, fab)
}

/// Pre-built tagged frame for synthetic flow `f`: unique 5-tuple, dst IP
/// unrouted on every switch so the fast path observes it, then
/// flood-drops the buffer.
fn flow_frame(f: u32) -> (Vec<u8>, flextoe_wire::FrameMeta) {
    let seg = SegmentSpec {
        src_mac: MacAddr::local(200),
        dst_mac: MacAddr::local(201),
        src_ip: Ip4::host(220),
        dst_ip: Ip4::host(240),
        src_port: 1_024 + f as u16,
        dst_port: 7_000,
        payload_len: 64 + (f as usize % 4) * 64,
        ..Default::default()
    };
    (seg.emit_zeroed(), seg.meta())
}

/// Sweep reports merge into views that match per-switch exact truth:
/// byte totals are equal, every truth key was captured, and neither
/// sketch ever under-estimates a flow (count-min's guarantee must
/// survive encode → report frame → decode → epoch merge).
#[test]
fn collector_merges_exact_fabric_truth() {
    let (mut sim, fab) = telemetry_fabric(11, TelemetrySpec::default());
    // 30 flows, skewed 1 + 60/(f+1) frames, interleaved across the 3
    // switches at a 500ns spacing — all inside the first 1ms epoch
    let mut at = Time::ZERO;
    for f in 0..30u32 {
        let (bytes, meta) = flow_frame(f);
        for _ in 0..(1 + 60 / (f + 1)) {
            let sw = fab.switches[f as usize % fab.switches.len()];
            sim.schedule(at, sw, Frame::tagged(bytes.clone(), meta));
            at += flextoe_sim::Duration::from_ns(500);
        }
    }
    sim.run();

    let col = sim.node_ref::<Collector>(fab.collector.expect("collector wired"));
    assert_eq!(col.bad_reports, 0);
    assert_eq!(
        col.reports,
        col.sweeps_sent * fab.switches.len() as u64,
        "every sweep of every live switch must report"
    );
    for (i, &s) in fab.switches.iter().enumerate() {
        let sw = sim.node_ref::<Switch>(s);
        let truth = sw.telemetry_truth().expect("ground truth enabled");
        let truth_bytes: u64 = truth.values().sum();
        let v = &col.views()[i];
        assert_eq!(v.bytes, truth_bytes, "switch {i}: swept bytes != truth");
        for (&k, &exact) in truth {
            assert!(v.keys.contains(&k), "switch {i}: key table lost a flow");
            assert!(
                v.cm.estimate(k) >= exact,
                "switch {i}: count-min under-estimated"
            );
            assert!(
                v.lsb.estimate(k) >= exact,
                "switch {i}: lsb sketch under-estimated"
            );
        }
    }
    // default theta (0.1%) makes every one of these fat flows a heavy
    // hitter candidate on its switch
    assert!(!col.elephants(0).is_empty());
}

/// Killing a switch mid-epoch resets its sketch: the un-swept bytes are
/// gone from the merged view while the exact truth map survives — the
/// loss is visible as a view-vs-truth deficit. The other switches stay
/// exact, and the collector counts the missed sweeps.
#[test]
fn dead_switch_loses_epoch_but_truth_survives() {
    let spec = TelemetrySpec::default(); // 1ms epochs, 8 sweeps
    let mut sc = Scenario::idle(
        11,
        Fabric::LeafSpine {
            leaves: 2,
            spines: 1,
            hosts_per_leaf: 1,
        },
        Stack::FlexToe,
    );
    sc.telemetry = Some(spec);
    // spine (switch index 2) dies at 1.5ms — mid-epoch, after the 1ms
    // sweep — and heals at 2.6ms, missing the 2ms sweep entirely
    let spine = FaultTarget::Switch { index: 2 };
    sc.fault_schedule = vec![
        FaultEvent::down(Time::from_us(1_500), spine),
        FaultEvent::up(Time::from_us(2_600), spine),
    ];
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    // 20 flows × 100 frames each into the spine, spread over [0, 1.4ms]:
    // the [1.0, 1.4ms] tail sits un-swept in the sketch when it dies
    let mut at = Time::ZERO;
    for r in 0..100u32 {
        for f in 0..20u32 {
            let (bytes, meta) = flow_frame(f);
            sim.schedule(at, fab.switches[2], Frame::tagged(bytes.clone(), meta));
            let _ = r;
            at += flextoe_sim::Duration::from_ns(700);
        }
    }
    assert!(at < Time::from_us(1_500), "all frames land before the kill");
    sim.run();

    let col = sim.node_ref::<Collector>(fab.collector.expect("collector wired"));
    let sw = sim.node_ref::<Switch>(fab.switches[2]);
    let truth_bytes: u64 = sw.telemetry_truth().unwrap().values().sum();
    let v = &col.views()[2];
    assert!(
        v.bytes < truth_bytes,
        "kill must lose the un-swept epoch: view {} vs truth {truth_bytes}",
        v.bytes
    );
    assert!(v.bytes > 0, "the pre-kill sweep was merged");
    assert!(
        col.reports < col.sweeps_sent * fab.switches.len() as u64,
        "dead switch must miss sweeps"
    );
    assert_eq!(col.bad_reports, 0);
}

/// Telemetry is strictly opt-in: a scenario without the knob builds no
/// collector and arms no switch, so the fast path carries zero sketch
/// state — the default fabrics of the other benchmarks are untouched.
#[test]
fn telemetry_is_default_off() {
    let sc = Scenario::idle(
        11,
        Fabric::LeafSpine {
            leaves: 2,
            spines: 1,
            hosts_per_leaf: 1,
        },
        Stack::FlexToe,
    );
    assert!(
        sc.telemetry.is_none(),
        "idle scenario must not wire telemetry"
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    assert!(fab.collector.is_none());
    for &s in &fab.switches {
        let sw = sim.node_ref::<Switch>(s);
        assert!(sw.telemetry_truth().is_none());
        assert!(sw.telemetry_elephants().is_empty());
    }
}

/// The telemetry sweep's acceptance contract: smoke accuracy rows are
/// complete (every observed byte swept) with zero count-min
/// under-estimates, report frames obey buffer conservation, and
/// `BENCH_telemetry.json` is byte-identical across `--jobs` values.
#[test]
fn telemetry_sweep_is_complete_and_byte_identical() {
    let plan = TelemetryPlan::smoke();
    let a = run_telemetry_jobs(29, &plan, 1);
    let ja = telemetry_json(29, &a);
    for r in &a {
        if r.json.contains("\"kind\": \"accuracy\"") {
            assert!(r.json.contains("\"complete\": true"), "{}", r.json);
            assert!(r.json.contains("\"cm_underestimates\": 0"), "{}", r.json);
        }
        if r.json.contains("\"conserved\"") {
            assert!(r.json.contains("\"conserved\": true"), "{}", r.json);
        }
    }
    let jb = telemetry_json(29, &run_telemetry_jobs(29, &plan, 2));
    assert_eq!(ja, jb, "jobs=2 diverged from the serial run");
    assert!(ja.contains("\"benchmark\": \"telemetry\""));
    assert!(ja.contains("\"kind\": \"faults\""));
    assert!(ja.contains("\"kind\": \"hh_ecmp\""));
}
