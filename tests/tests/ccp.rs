//! End-to-end behavior of the out-of-band congestion-control plane on
//! the congested-fabric (incast) scenario: fairness and queue control
//! under DCTCP, measurable algorithm contrast, deterministic batched
//! reporting, and the batching invariants themselves.

use flextoe_bench::cc::{cc_json, run_cc, run_cc_one, CcScale, ECN_K};
use flextoe_ccp::{FoldProg, FoldSpec};
use flextoe_control::CcAlgo;
use flextoe_sim::{Duration, Time};

fn two_flow_scale() -> CcScale {
    CcScale {
        senders: 2,
        duration: Time::from_ms(12),
        warmup: Time::from_ms(2),
        window: Duration::from_ms(1),
    }
}

/// Two DCTCP flows through the ECN-marking switch converge to fair share
/// and hold the bottleneck queue near the marking threshold K.
#[test]
fn two_dctcp_flows_converge_fair_and_hold_queue_near_k() {
    let r = run_cc_one(21, CcAlgo::Dctcp, FoldSpec::Builtin, two_flow_scale());
    assert!(r.jain >= 0.95, "fair share: Jain {}", r.jain);
    assert!(
        r.convergence_ms > 0.0,
        "windowed fairness must converge (got {})",
        r.convergence_ms
    );
    // queue rides near K: well below the WRED band (64 KB), well above
    // empty — DCTCP's signature on this fabric
    let k_kb = ECN_K as f64 / 1024.0;
    assert!(
        r.avg_queue_kb > k_kb / 4.0 && r.avg_queue_kb < k_kb * 2.5,
        "avg queue {} KB should sit near K = {} KB",
        r.avg_queue_kb,
        k_kb
    );
    assert!(r.ecn_marked > 0, "the switch marked CE");
    assert!(
        r.goodput_gbps > 3.0,
        "bottleneck utilized: {}",
        r.goodput_gbps
    );
}

/// CUBIC (loss-based) and DCTCP (mark-based) must behave measurably
/// differently on the same seed: CUBIC ignores marks and rides the queue
/// into the WRED band, DCTCP holds it near K.
#[test]
fn cubic_vs_dctcp_differ_measurably_on_same_seed() {
    let scale = two_flow_scale();
    let dctcp = run_cc_one(33, CcAlgo::Dctcp, FoldSpec::Builtin, scale);
    let cubic = run_cc_one(33, CcAlgo::Cubic, FoldSpec::Builtin, scale);
    assert!(
        cubic.avg_queue_kb > dctcp.avg_queue_kb * 1.3,
        "cubic queue {} KB !>> dctcp queue {} KB",
        cubic.avg_queue_kb,
        dctcp.avg_queue_kb
    );
    assert!(
        cubic.ecn_marked > dctcp.ecn_marked,
        "a higher queue collects more marks: {} vs {}",
        cubic.ecn_marked,
        dctcp.ecn_marked
    );
}

/// Same seed ⇒ byte-identical `BENCH_cc.json` metrics, including the
/// batched report path and the eBPF-fold run.
#[test]
fn report_batching_is_deterministic() {
    let scale = CcScale::smoke();
    let a = cc_json(7, scale, &run_cc(7, scale));
    let b = cc_json(7, scale, &run_cc(7, scale));
    assert_eq!(a, b, "same seed must reproduce identical metrics");
    // sanity on shape: all five sweep entries present
    assert_eq!(a.matches("\"algo\"").count(), 5);
    for name in ["dctcp", "timely", "cubic", "reno"] {
        assert!(
            a.contains(&format!("\"algo\": \"{name}\"")),
            "{name} in sweep"
        );
    }
    assert!(a.contains("\"fold\": \"ebpf\""), "eBPF fold path in sweep");
}

/// Reports reach the control plane as *batched*, out-of-band messages:
/// far fewer batches than folded ACK events, multiple flow reports per
/// batch on average — no per-ACK control-plane event.
#[test]
fn reports_are_batched_not_per_ack() {
    let r = run_cc_one(21, CcAlgo::Dctcp, FoldSpec::Builtin, two_flow_scale());
    assert!(r.report_batches > 0, "reports flowed");
    assert!(r.flow_reports >= r.report_batches, "batches carry reports");
    assert!(
        r.acks_folded > 10 * r.report_batches,
        "batching: {} folded ACKs produced only {} control-plane messages",
        r.acks_folded,
        r.report_batches
    );
}

/// The compiled-eBPF fold path drives the same control loop end-to-end:
/// DCTCP on the VM fold still converges and controls the queue.
#[test]
fn ebpf_fold_path_works_end_to_end() {
    let r = run_cc_one(
        21,
        CcAlgo::Dctcp,
        FoldSpec::Program(FoldProg::builtin()),
        two_flow_scale(),
    );
    assert!(r.jain >= 0.9, "Jain {}", r.jain);
    assert!(r.report_batches > 0);
    let k_kb = ECN_K as f64 / 1024.0;
    assert!(
        r.avg_queue_kb < k_kb * 2.5,
        "queue controlled: {} KB",
        r.avg_queue_kb
    );
}
