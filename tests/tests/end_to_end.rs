//! End-to-end integration: handshake + data transfer through the complete
//! FlexTOE pipeline (MAC → sequencer → pre → protocol → post → DMA →
//! context queues → libTOE) on both hosts, over a simulated link.

use flextoe_control::AppReply;
use flextoe_core::stages::AppNotify;
use flextoe_core::NicHandle;
use flextoe_integration::default_setup;
use flextoe_libtoe::{LibToe, SockEvent};
use flextoe_sim::{cast, try_cast, Ctx, Msg, Node, NodeId, Sim, Tick, Time};
use flextoe_wire::Ip4;

/// Test server: listens, echoes everything it reads, closes on EOF.
struct EchoServer {
    nic: NicHandle,
    ctrl: NodeId,
    lib: Option<LibToe>,
    port: u16,
    pub echoed: u64,
    pub accepted: u32,
    pub eofs: u32,
}

impl EchoServer {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let lib = self.lib.as_mut().unwrap();
        for ev in lib.poll() {
            match ev {
                SockEvent::Readable { conn, .. } => {
                    let data = lib.recv(ctx, conn, u32::MAX);
                    self.echoed += data.len() as u64;
                    let sent = lib.send(ctx, conn, &data);
                    assert_eq!(sent, data.len(), "echo server tx buffer full");
                }
                SockEvent::Eof { conn } => {
                    self.eofs += 1;
                    lib.close(ctx, conn);
                }
                _ => {}
            }
        }
    }
}

impl Node for EchoServer {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.lib.is_none() {
            // first message is the start tick
            let mut lib = LibToe::new(ctx, 1, self.nic.clone(), self.ctrl, ctx.self_id());
            lib.listen(ctx, self.port);
            self.lib = Some(lib);
            return;
        }
        let msg = match try_cast::<AppReply>(msg) {
            Ok(reply) => {
                if let SockEvent::Accepted { .. } = self.lib.as_mut().unwrap().on_reply(*reply) {
                    self.accepted += 1;
                }
                return;
            }
            Err(m) => m,
        };
        let _ = cast::<AppNotify>(msg);
        self.pump(ctx);
    }
}

/// Test client: connects, sends `req` bytes patterned, validates the echo.
struct EchoClient {
    nic: NicHandle,
    ctrl: NodeId,
    server: (Ip4, u16),
    lib: Option<LibToe>,
    msg_size: usize,
    rounds: u32,
    sent_rounds: u32,
    conn: Option<u32>,
    rx: Vec<u8>,
    pub completed: u32,
    pub connected: bool,
    pub failed: bool,
    pub finished_at: Time,
    pub got_eof: bool,
}

impl EchoClient {
    fn pattern(&self, round: u32) -> Vec<u8> {
        (0..self.msg_size)
            .map(|i| (i as u8) ^ (round as u8) ^ 0x5a)
            .collect()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(conn) = self.conn else { return };
        let lib = self.lib.as_mut().unwrap();
        for ev in lib.poll() {
            match ev {
                SockEvent::Readable { .. } => {
                    let data = lib.recv(ctx, conn, u32::MAX);
                    self.rx.extend_from_slice(&data);
                }
                SockEvent::Eof { .. } => {
                    self.got_eof = true;
                }
                _ => {}
            }
        }
        while self.rx.len() >= self.msg_size {
            let echo: Vec<u8> = self.rx.drain(..self.msg_size).collect();
            assert_eq!(
                echo,
                self.pattern(self.completed),
                "echo payload corrupted in round {}",
                self.completed
            );
            self.completed += 1;
            if self.sent_rounds < self.rounds {
                let req = self.pattern(self.sent_rounds);
                let lib = self.lib.as_mut().unwrap();
                let n = lib.send(ctx, conn, &req);
                assert_eq!(n, req.len());
                self.sent_rounds += 1;
            } else if self.completed == self.rounds {
                self.finished_at = ctx.now();
                let lib = self.lib.as_mut().unwrap();
                lib.close(ctx, conn);
            }
        }
    }
}

impl Node for EchoClient {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        if self.lib.is_none() {
            let mut lib = LibToe::new(ctx, 1, self.nic.clone(), self.ctrl, ctx.self_id());
            lib.connect(ctx, self.server.0, self.server.1, 42);
            self.lib = Some(lib);
            return;
        }
        let msg = match try_cast::<AppReply>(msg) {
            Ok(reply) => {
                match self.lib.as_mut().unwrap().on_reply(*reply) {
                    SockEvent::Connected { conn, opaque } => {
                        assert_eq!(opaque, 42);
                        self.connected = true;
                        self.conn = Some(conn);
                        // send the first request
                        let req = self.pattern(0);
                        let lib = self.lib.as_mut().unwrap();
                        let n = lib.send(ctx, conn, &req);
                        assert_eq!(n, req.len());
                        self.sent_rounds = 1;
                    }
                    SockEvent::ConnectFailed { .. } => self.failed = true,
                    _ => {}
                }
                return;
            }
            Err(m) => m,
        };
        let _ = cast::<AppNotify>(msg);
        self.pump(ctx);
    }
}

fn run_echo(msg_size: usize, rounds: u32) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(42);
    let (a, b) = default_setup(&mut sim);
    let server = sim.add_node(EchoServer {
        nic: b.nic.handle(),
        ctrl: b.ctrl,
        lib: None,
        port: 7777,
        echoed: 0,
        accepted: 0,
        eofs: 0,
    });
    let client = sim.add_node(EchoClient {
        nic: a.nic.handle(),
        ctrl: a.ctrl,
        server: (b.ip, 7777),
        lib: None,
        msg_size,
        rounds,
        sent_rounds: 0,
        conn: None,
        rx: Vec::new(),
        completed: 0,
        connected: false,
        failed: false,
        finished_at: Time::ZERO,
        got_eof: false,
    });
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(500));
    (sim, server, client)
}

#[test]
fn handshake_and_small_echo() {
    let (sim, server, client) = run_echo(64, 1);
    let c = sim.node_ref::<EchoClient>(client);
    let s = sim.node_ref::<EchoServer>(server);
    assert!(c.connected, "handshake failed");
    assert_eq!(s.accepted, 1);
    assert_eq!(c.completed, 1, "echo round incomplete");
    assert_eq!(s.echoed, 64);
}

#[test]
fn multi_round_echo_with_data_integrity() {
    let (sim, server, client) = run_echo(200, 50);
    let c = sim.node_ref::<EchoClient>(client);
    assert_eq!(c.completed, 50);
    assert_eq!(sim.node_ref::<EchoServer>(server).echoed, 50 * 200);
}

#[test]
fn multi_segment_messages() {
    // 8 KB spans 6 MSS-sized segments each way
    let (sim, server, client) = run_echo(8192, 10);
    let c = sim.node_ref::<EchoClient>(client);
    assert_eq!(c.completed, 10);
    assert_eq!(sim.node_ref::<EchoServer>(server).echoed, 10 * 8192);
}

#[test]
fn fin_teardown_reaches_both_sides() {
    let (mut sim, server, client) = run_echo(64, 3);
    // client closed after round 3; server echoes EOF with its own close
    sim.run_until(Time::from_ms(600));
    let s = sim.node_ref::<EchoServer>(server);
    assert_eq!(s.eofs, 1, "server saw client FIN");
    let c = sim.node_ref::<EchoClient>(client);
    assert!(c.got_eof, "client saw server FIN");
    // control planes reclaimed data-path state on both hosts
    assert_eq!(sim.stats.get_named("ctrl.teardown"), 2);
}

#[test]
fn single_rpc_latency_is_microseconds() {
    // sanity: one 64 B echo over 2 us links through both pipelines should
    // complete in tens of microseconds, not milliseconds (Fig. 11 scale).
    let (sim, _server, client) = run_echo(64, 1);
    let c = sim.node_ref::<EchoClient>(client);
    let rtt = c.finished_at;
    assert!(
        rtt > Time::from_us(10) && rtt < Time::from_us(300),
        "unexpected end-to-end completion time {rtt:?}"
    );
}
