//! Robustness integration (§5.3): loss, corruption, XDP filtering, and
//! the reordering ablation, all through the complete pipeline.

use flextoe_apps::{
    ClientConfig, FlexToeStack, LoadMode, RpcClientApp, RpcServerApp, ServerConfig,
};
use flextoe_core::module::{xdp_with_maps, Hook};
use flextoe_core::stages::pre::PreStage;
use flextoe_core::PipeCfg;
use flextoe_ebpf::{programs, Map};
use flextoe_integration::{two_flextoe_hosts, Host};
use flextoe_netsim::Faults;
use flextoe_sim::{Duration, NodeId, Sim, Tick, Time};

type Client = RpcClientApp<FlexToeStack>;
type Server = RpcServerApp<FlexToeStack>;

fn stack_init(host: &Host, ctx_id: u16) -> flextoe_apps::StackInit<FlexToeStack> {
    let nic = host.nic.handle();
    let ctrl = host.ctrl;
    Box::new(move |ctx, app| FlexToeStack::new(ctx, ctx_id, nic, ctrl, app))
}

fn lossy_echo(cfg: PipeCfg, faults: Faults, msg: u32, rounds: u64, seed: u64) -> (Sim, NodeId) {
    let mut sim = Sim::new(seed);
    let (a, b) = two_flextoe_hosts(
        &mut sim,
        cfg,
        Default::default(),
        Duration::from_us(2),
        faults,
    );
    let server = sim.add_node(Server::new(
        ServerConfig {
            msg_size: msg,
            resp_size: msg,
            echo_data: true,
            ..Default::default()
        },
        stack_init(&b, 1),
    ));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: b.ip,
            n_conns: 4,
            msg_size: msg,
            resp_size: msg,
            mode: LoadMode::Closed { pipeline: 2 },
            stop_after: Some(rounds),
            ..Default::default()
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(4000));
    (sim, client)
}

#[test]
fn transfer_completes_under_one_percent_loss() {
    let (sim, client) = lossy_echo(
        PipeCfg::agilio_full(),
        Faults {
            drop_chance: 0.01,
            ..Default::default()
        },
        4096,
        100,
        1234,
    );
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.measured, 100, "go-back-N + OOO interval must recover");
    // recovery machinery actually fired
    let retx = sim.stats.get_named("proto.fast_retx") + sim.stats.get_named("proto.rto_retx");
    assert!(retx > 0, "loss was injected but nothing retransmitted");
}

#[test]
fn corruption_is_dropped_by_checksums_and_recovered() {
    let (sim, client) = lossy_echo(
        PipeCfg::agilio_full(),
        Faults {
            corrupt_chance: 0.01,
            ..Default::default()
        },
        2048,
        60,
        77,
    );
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.measured, 60, "corrupted frames must not corrupt streams");
    assert!(
        sim.stats.get_named("pre.malformed") > 0,
        "checksum verification rejected corrupted frames"
    );
}

#[test]
fn reorder_ablation_still_correct_just_noisier() {
    // §3.2: without sequencing/reordering the pipeline may present
    // segments to the protocol stage out of order. TCP still recovers
    // (correctness), at the cost of spurious OOO processing.
    let cfg = PipeCfg {
        reorder: false,
        ..PipeCfg::agilio_full()
    };
    let (sim, client) = lossy_echo(cfg, Faults::default(), 4096, 80, 5);
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.measured, 80, "data integrity must survive the ablation");
}

#[test]
fn xdp_firewall_blocks_in_the_pipeline() {
    // Install a firewall that blacklists the client's IP on the server
    // NIC: the handshake must never complete.
    let mut sim = Sim::new(9);
    let (a, b) = two_flextoe_hosts(
        &mut sim,
        PipeCfg::agilio_full(),
        Default::default(),
        Duration::from_us(2),
        Faults::default(),
    );
    let (fw, maps) = xdp_with_maps("firewall", Hook::RxIngress, |m| {
        let fd = m.add(Map::hash(4, 8, 64));
        programs::firewall(fd)
    });
    maps.borrow_mut()
        .get_mut(0)
        .unwrap()
        .update(&a.ip.octets(), &[0; 8])
        .unwrap();
    let pre = b.nic.pre;
    sim.node_mut::<PreStage>(pre).ingress.push(Box::new(fw));

    let server = sim.add_node(Server::new(ServerConfig::default(), stack_init(&b, 1)));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: b.ip,
            n_conns: 1,
            ..Default::default()
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(10), client, Tick);
    sim.run_until(Time::from_ms(100));
    let c = sim.node_ref::<Client>(client);
    assert_eq!(c.connected, 0, "firewalled SYNs must never establish");
    assert!(
        sim.node_ref::<PreStage>(pre).dropped > 0,
        "drops happened at the XDP hook"
    );
}

#[test]
fn deterministic_replay() {
    // Same seed => byte-identical behaviour (event counts, latencies).
    let run = |seed| {
        let (sim, client) = lossy_echo(
            PipeCfg::agilio_full(),
            Faults {
                drop_chance: 0.03,
                ..Default::default()
            },
            1024,
            40,
            seed,
        );
        let c = sim.node_ref::<Client>(client);
        (sim.events_processed(), c.latency.median(), c.measured)
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0);
}
