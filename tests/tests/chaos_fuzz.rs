//! The seeded chaos fuzzer: random small fabrics under random gray+hard
//! fault schedules, every trial run to drain and audited against the
//! conservation invariant. The meta-RNG is the deterministic
//! `flextoe_sim::Rng` with a pinned base seed, so CI replays the exact
//! same trial set every run (and under `FLEXTOE_SIM_REFERENCE=1`); any
//! violation reports its trial seed for standalone reproduction.

use flextoe_apps::{CloseAll, FramedServerConfig, SessionConfig};
use flextoe_bench::faults::buf_balance;
use flextoe_netsim::{Faults, GeParams};
use flextoe_sim::{Duration, Rng, Sim, Time};
use flextoe_topo::{
    build_fabric, DynSessionClient, Fabric, FaultEvent, FaultTarget, LinkScope, Role, Scenario,
    Stack,
};

/// Pinned fuzzer namespace: trial `k` derives everything from
/// `Rng::new(FUZZ_SEED ^ k)`.
const FUZZ_SEED: u64 = 0xF1EC_70E0;

/// Trials per run. Sized for the CI smoke budget; every trial is
/// independent, so raising this locally widens coverage linearly.
const TRIALS: u64 = 30;

/// One random gray or hard fault on a random target, with its heal.
/// Every fault scheduled at `t_fault` is healed at `t_heal` — the
/// drain-phase audit then checks full recovery.
fn random_fault(
    meta: &mut Rng,
    n_fabric_links: usize,
    n_switches: usize,
    t_fault: Time,
    t_heal: Time,
) -> Vec<FaultEvent> {
    match meta.below(6) {
        // gray: probabilistic degradation of the fabric links
        0 => {
            let faults = Faults {
                drop_chance: meta.below(8) as f64 / 100.0,
                dup_chance: meta.below(30) as f64 / 100.0,
                jitter: Duration::from_ns(meta.below(6_000)),
                latency_mult: 1 + meta.below(4) as u32,
                ..Default::default()
            };
            vec![
                FaultEvent::degrade(t_fault, LinkScope::Fabric, faults),
                FaultEvent::degrade(t_heal, LinkScope::Fabric, Faults::default()),
            ]
        }
        // gray: bursty Gilbert–Elliott loss
        1 => {
            let ge = GeParams {
                p_enter: (1 + meta.below(4)) as f64 / 100.0,
                p_exit: (10 + meta.below(30)) as f64 / 100.0,
                loss_good: 0.0,
                loss_bad: (30 + meta.below(70)) as f64 / 100.0,
            };
            vec![
                FaultEvent::degrade(
                    t_fault,
                    LinkScope::Fabric,
                    Faults {
                        ge: Some(ge),
                        ..Default::default()
                    },
                ),
                FaultEvent::degrade(t_heal, LinkScope::Fabric, Faults::default()),
            ]
        }
        // gray: a limping switch
        2 => {
            let sw = meta.below(n_switches as u64) as usize;
            let factor = 1u32 << (1 + meta.below(9)); // 2..=512
            vec![
                FaultEvent::limp(t_fault, sw, factor),
                FaultEvent::limp(t_heal, sw, 1),
            ]
        }
        // hard: one fabric link down/up
        3 => {
            let link = FaultTarget::FabricLink {
                index: meta.below(n_fabric_links as u64) as usize,
            };
            vec![
                FaultEvent::down(t_fault, link),
                FaultEvent::up(t_heal, link),
            ]
        }
        // hard: a whole switch down/up
        4 => {
            let sw = FaultTarget::Switch {
                index: meta.below(n_switches as u64) as usize,
            };
            vec![FaultEvent::down(t_fault, sw), FaultEvent::up(t_heal, sw)]
        }
        // flap: two short down/up cycles inside the window
        _ => {
            let link = FaultTarget::FabricLink {
                index: meta.below(n_fabric_links as u64) as usize,
            };
            let quarter = Duration::from_ns(t_heal.saturating_since(t_fault).as_ns() / 4);
            vec![
                FaultEvent::down(t_fault, link),
                FaultEvent::up(t_fault + quarter, link),
                FaultEvent::down(t_fault + quarter * 2, link),
                FaultEvent::up(t_heal, link),
            ]
        }
    }
}

/// Build one random trial: a random small leaf/spine fabric with the
/// reconnecting-session workload and 1–3 random fault arcs.
fn random_scenario(trial: u64) -> (Scenario, u64) {
    let mut meta = Rng::new(FUZZ_SEED ^ trial);
    let seed = meta.next_u64();
    let leaves = 2 + meta.below(2) as usize; // 2..=3
    let spines = 1 + meta.below(2) as usize; // 1..=2
    let hosts_per_leaf = 2usize;
    let fabric = Fabric::LeafSpine {
        leaves,
        spines,
        hosts_per_leaf,
    };
    let n_fabric_links = leaves * spines;
    let n_switches = leaves + spines;

    let mut sc = Scenario::idle(seed, fabric, Stack::FlexToe);
    sc.opts.min_rto = Duration::from_us(200);
    sc.opts.syn_retry = Duration::from_us(400);
    sc.opts.rto_give_up = Some(3);
    // one in four trials also caps the work pool: exhaustion shedding
    // must compose with whatever faults the schedule draws
    if meta.below(4) == 0 {
        sc.opts.cfg.work_pool_cap = Some(8 + meta.below(24) as usize);
    }
    for i in 0..sc.hosts.len() {
        sc.hosts[i].role = if i % 2 == 0 {
            let leaf = i / hosts_per_leaf;
            Role::Session {
                cfg: SessionConfig {
                    n_sessions: 2 + meta.below(3) as u32,
                    req_size: if meta.below(2) == 0 { 512 } else { 8192 },
                    resp_size: 512,
                    think: Duration::from_us(20),
                    backoff_base: Duration::from_us(200),
                    backoff_cap: Duration::from_ms(2),
                    warmup: Time::from_us(300),
                    ..Default::default()
                },
                target: ((leaf + 1) % leaves) * hosts_per_leaf + 1,
            }
        } else {
            Role::FramedServer(FramedServerConfig::default())
        };
    }
    let n_faults = 1 + meta.below(3);
    for _ in 0..n_faults {
        let t_fault = Time::from_ns(300_000 + meta.below(500_000));
        let t_heal = t_fault + Duration::from_ns(300_000 + meta.below(600_000));
        sc.fault_schedule.extend(random_fault(
            &mut meta,
            n_fabric_links,
            n_switches,
            t_fault,
            t_heal,
        ));
    }
    (sc, seed)
}

/// ≥ 25 random gray+hard schedules: every trial must run to drain
/// without panicking, account every request exactly once, release every
/// work slot and packet buffer, and have made progress.
#[test]
fn random_gray_and_hard_schedules_conserve_and_drain() {
    for trial in 0..TRIALS {
        let (sc, seed) = random_scenario(trial);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        // all faults are healed by ~1.7 ms; close at 2 ms, drain to 5 ms
        // (give-up budget ≈ min_rto × 2^3 = 1.6 ms bounds abort latency)
        sim.run_until(Time::from_ms(2));
        for h in &fab.hosts {
            if let Some(n) = h.session() {
                sim.schedule(sim.now(), n, CloseAll);
            }
        }
        sim.run_until(Time::from_ms(5));

        let ctx = format!(
            "trial {trial} (seed {seed}, schedule {:?})",
            sc.fault_schedule
        );
        let (mut issued, mut completed, mut dead) = (0u64, 0u64, 0u64);
        for h in &fab.hosts {
            let Some(n) = h.session() else { continue };
            let c = sim.node_ref::<DynSessionClient>(n);
            issued += c.issued;
            completed += c.completed;
            dead += c.dead_requests;
            assert_eq!(c.in_flight(), 0, "live request after drain in {ctx}");
        }
        assert!(completed > 0, "no progress in {ctx}");
        assert_eq!(
            issued,
            completed + dead,
            "request accounting broke in {ctx}"
        );
        let mut work_in_use = 0;
        for h in &fab.hosts {
            if let Some((nic, _)) = &h.ep.flextoe {
                work_in_use += nic.pool_gauges(&sim).work_in_use;
            }
        }
        assert_eq!(work_in_use, 0, "work-pool slots leaked in {ctx}");
        assert_eq!(buf_balance(&sim, &fab), 0, "buffers leaked in {ctx}");
    }
}
