//! libTOE under many concurrent connections: accept/connect churn with
//! connection-id reuse, context-queue ordering (the framed protocol's
//! per-request magic check fails on any byte misordering), and pool
//! balance after quiescence — no WorkPool or descriptor leaks.

use flextoe_apps::{CloseAll, FramedServerConfig, OpenLoopConfig, SizeDist};
use flextoe_control::ControlPlane;
use flextoe_sim::{Duration, Sim, Tick, Time};
use flextoe_topo::{build_pair, DynFramedServer, DynOpenLoopClient, PairOpts, Stack};

fn client_cfg(n_conns: u32, stop_after: u64) -> OpenLoopConfig {
    OpenLoopConfig {
        n_conns,
        rate_rps: 400_000.0,
        req_size: SizeDist::Uniform { lo: 64, hi: 512 },
        resp_size: SizeDist::Uniform { lo: 64, hi: 2048 },
        stop_after: Some(stop_after),
        connect_spacing: Duration::from_ns(500),
        ..Default::default()
    }
}

/// 128 concurrent connections of framed traffic; every request's header
/// magic must verify (any context-queue/doorbell misordering would shift
/// the byte stream and scramble headers), responses complete in per-conn
/// FIFO order, and the work pools balance to zero at quiescence.
#[test]
fn many_connections_byte_exact_and_pools_balance() {
    let opts = PairOpts::default();
    let mut sim = Sim::new(77);
    let (ec, es) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);
    let server = sim.add_node(DynFramedServer::new(
        FramedServerConfig::default(),
        es.stack_init(Stack::FlexToe, 1),
    ));
    let client = sim.add_node(DynOpenLoopClient::new(
        OpenLoopConfig {
            server_ip: es.ip,
            ..client_cfg(128, 2000)
        },
        ec.stack_init(Stack::FlexToe, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(Time::from_ms(50));

    let c = sim.node_ref::<DynOpenLoopClient>(client);
    assert_eq!(c.connected, 128);
    assert_eq!(c.failed, 0);
    assert!(c.measured >= 2000, "measured {}", c.measured);
    let s = sim.node_ref::<DynFramedServer>(server);
    assert_eq!(s.bad_frames, 0, "byte stream stayed framed");
    assert_eq!(s.accepted, 128);

    // quiesce: park the arrival process, close everything, drain
    sim.clear_halt();
    sim.schedule(sim.now(), client, CloseAll);
    sim.run_until(sim.now() + Duration::from_ms(20));
    for ep in [&ec, &es] {
        let nic = &ep.flextoe.as_ref().unwrap().0;
        let pool = nic.work_pool.borrow();
        assert_eq!(pool.in_use(), 0, "work pool leak: {:?}", pool.live_slots());
        assert!(pool.allocated > 0 && pool.allocated == pool.released);
    }
}

/// Connect/close churn: waves of connections open, exchange RPCs, and
/// close; connection ids and pool slots are reused wave after wave and
/// nothing leaks. Each wave uses a fresh libTOE context (a new app
/// thread), like real clients coming and going.
#[test]
fn accept_connect_churn_reuses_ids_without_leaks() {
    let opts = PairOpts::default();
    let mut sim = Sim::new(31);
    let (ec, es) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);
    let server = sim.add_node(DynFramedServer::new(
        FramedServerConfig::default(),
        es.stack_init(Stack::FlexToe, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);

    let mut total_established = 0u64;
    for wave in 0..3u64 {
        let client = sim.add_node(DynOpenLoopClient::new(
            OpenLoopConfig {
                server_ip: es.ip,
                ..client_cfg(32, 300)
            },
            ec.stack_init(Stack::FlexToe, (wave + 2) as u16),
        ));
        sim.schedule(sim.now() + Duration::from_us(10), client, Tick);
        sim.run_until(sim.now() + Duration::from_ms(20));
        let c = sim.node_ref::<DynOpenLoopClient>(client);
        assert_eq!(c.connected, 32, "wave {wave} connected");
        assert!(c.measured >= 300, "wave {wave} measured {}", c.measured);
        total_established += 32;

        // close everything and drain the teardown (FIN both ways + the
        // control loop's reclaim)
        sim.clear_halt();
        sim.schedule(sim.now(), client, CloseAll);
        sim.run_until(sim.now() + Duration::from_ms(15));
        let table = ec.flextoe.as_ref().unwrap().0.table.borrow();
        assert!(
            table.is_empty(),
            "wave {wave}: client table still has {} conns",
            table.len()
        );
        drop(table);
        assert!(
            es.flextoe.as_ref().unwrap().0.table.borrow().is_empty(),
            "wave {wave}: server table not reclaimed"
        );
    }

    // id reuse: three waves of 32 conns never grew the table beyond one
    // wave's width (install reuses the lowest free index)
    let ctrl = ec.flextoe.as_ref().unwrap().1;
    assert_eq!(
        sim.node_ref::<ControlPlane>(ctrl).established,
        total_established
    );
    for (i, ep) in [&ec, &es].into_iter().enumerate() {
        let nic = &ep.flextoe.as_ref().unwrap().0;
        let pool = nic.work_pool.borrow();
        assert_eq!(pool.in_use(), 0, "churn leak: {:?}", pool.live_slots());
        drop(pool);
        // gauges read zero in-use and real high-water marks after churn,
        // and export onto the named-counter stats surface
        let g = nic.pool_gauges(&sim);
        assert_eq!(g.work_in_use, 0);
        assert!(g.work_high_water > 0);
        assert!(g.cache_high_water > 0);
        g.export(&mut sim.stats, &format!("nic{i}"));
        assert_eq!(
            sim.stats.get_named(&format!("nic{i}.work_pool.hwm")),
            g.work_high_water as u64
        );
        assert_eq!(
            sim.stats.get_named(&format!("nic{i}.conn_cache.dram")),
            g.cache_dram_accesses
        );
    }
}

/// The server's per-connection response order matches the request order
/// even when many conns interleave: the client's FIFO accounting would
/// desync (and latencies go absurd / measured stall) otherwise. Driven
/// hard: responses larger than the socket buffer force partial sends and
/// Writable resumption.
#[test]
fn interleaved_large_responses_preserve_per_conn_fifo() {
    let mut opts = PairOpts::default();
    opts.cfg.rx_buf_size = 4 * 1024;
    opts.cfg.tx_buf_size = 4 * 1024;
    let mut sim = Sim::new(55);
    let (ec, es) = build_pair(&mut sim, Stack::FlexToe, Stack::FlexToe, &opts);
    let server = sim.add_node(DynFramedServer::new(
        FramedServerConfig::default(),
        es.stack_init(Stack::FlexToe, 1),
    ));
    let client = sim.add_node(DynOpenLoopClient::new(
        OpenLoopConfig {
            server_ip: es.ip,
            n_conns: 16,
            rate_rps: 200_000.0,
            req_size: SizeDist::Fixed(64),
            // responses up to 4x the socket buffer: guaranteed Writable
            // backpressure inside the server
            resp_size: SizeDist::Uniform {
                lo: 1024,
                hi: 16 * 1024,
            },
            stop_after: Some(400),
            ..Default::default()
        },
        ec.stack_init(Stack::FlexToe, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(Time::from_ms(80));
    let c = sim.node_ref::<DynOpenLoopClient>(client);
    assert!(c.measured >= 400, "measured {}", c.measured);
    // FIFO intact: nothing left over that shouldn't be, no stuck conns
    let s = sim.node_ref::<DynFramedServer>(server);
    assert_eq!(s.bad_frames, 0);
    assert!(
        c.latency.max() < 20_000_000,
        "p-max latency sane: {} ns",
        c.latency.max()
    );
}
