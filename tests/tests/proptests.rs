//! Property-based tests on the core data structures and protocol
//! invariants (proptest).

use proptest::prelude::*;

use flextoe_core::proto::{self, RxSummary};
use flextoe_core::reorder::Reorder;
use flextoe_core::sched::Carousel;
use flextoe_core::ProtoState;
use flextoe_sim::{Duration, Histogram, Time};
use flextoe_wire::{checksum, SegmentSpec, SegmentView, SeqNum, TcpFlags, TcpOptions};

proptest! {
    /// Whatever order items enter the reorderer, they exit in order.
    #[test]
    fn reorder_releases_in_order(perm in proptest::sample::subsequence((0..64u64).collect::<Vec<_>>(), 64)) {
        // `perm` is 0..64 but we shuffle via the subsequence trick +
        // rotation; build a real permutation instead:
        let mut order: Vec<u64> = (0..64).collect();
        let rot = perm.len() % 64;
        order.rotate_left(rot);
        let mut r = Reorder::new();
        let mut out = Vec::new();
        for seq in order {
            out.extend(r.push(seq, seq));
        }
        prop_assert_eq!(out, (0..64u64).collect::<Vec<_>>());
    }

    /// Random skip/push interleavings never deliver out of order or twice.
    #[test]
    fn reorder_with_random_skips(skips in proptest::collection::btree_set(0..100u64, 0..40)) {
        let mut r = Reorder::new();
        let mut released = Vec::new();
        // push items high-to-low so everything buffers, skipping `skips`
        for seq in (0..100u64).rev() {
            if skips.contains(&seq) {
                released.extend(r.skip(seq));
            } else {
                released.extend(r.push(seq, seq));
            }
        }
        let expect: Vec<u64> = (0..100u64).filter(|s| !skips.contains(s)).collect();
        prop_assert_eq!(released, expect);
    }

    /// TCP segments survive emit -> parse for arbitrary field values.
    #[test]
    fn segment_roundtrip(
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        sport in 1..u16::MAX,
        dport in 1..u16::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        tsval in any::<u32>(),
        tsecr in any::<u32>(),
    ) {
        let spec = SegmentSpec {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window,
            options: TcpOptions { timestamp: Some((tsval, tsecr)), ..Default::default() },
            payload_len: payload.len(),
            ..Default::default()
        };
        let frame = spec.emit(&payload);
        let v = SegmentView::parse(&frame, true).unwrap();
        prop_assert_eq!(v.seq, SeqNum(seq));
        prop_assert_eq!(v.ack, SeqNum(ack));
        prop_assert_eq!(v.window, window);
        prop_assert_eq!(v.payload(&frame), &payload[..]);
        prop_assert_eq!((v.tsval, v.tsecr), (tsval, tsecr));
    }

    /// Single-bit corruption anywhere in a frame is always detected by
    /// the IP or TCP checksum.
    #[test]
    fn checksums_catch_single_bit_flips(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0..8u8,
    ) {
        let spec = SegmentSpec {
            src_port: 1000,
            dst_port: 2000,
            flags: TcpFlags::ACK,
            payload_len: payload.len(),
            ..Default::default()
        };
        let mut frame = spec.emit(&payload);
        // flip one bit outside the Ethernet header (not checksummed)
        let idx = 14 + byte_sel.index(frame.len() - 14);
        frame[idx] ^= 1 << bit;
        prop_assert!(SegmentView::parse(&frame, true).is_err());
    }

    /// Incremental checksum update equals full recomputation.
    #[test]
    fn incremental_checksum_equivalence(
        mut data in proptest::collection::vec(any::<u8>(), 20..64),
        new_val in any::<u16>(),
        pos_sel in any::<prop::sample::Index>(),
    ) {
        if data.len() % 2 == 1 { data.pop(); }
        let pos = pos_sel.index(data.len() / 2 - 1) * 2;
        let ck = checksum::checksum(&data);
        let old = u16::from_be_bytes([data[pos], data[pos + 1]]);
        data[pos..pos + 2].copy_from_slice(&new_val.to_be_bytes());
        prop_assert_eq!(checksum::checksum(&data), checksum::update16(ck, old, new_val));
    }

    /// Receiving arbitrary in-window segment sequences never corrupts the
    /// protocol invariants: rcv_nxt only advances, rx_avail never
    /// underflows, the OOO interval stays ahead of rcv_nxt.
    #[test]
    fn rx_state_invariants(
        segs in proptest::collection::vec((0u32..20_000, 1u32..2000), 1..60)
    ) {
        let mut ps = ProtoState {
            seq: SeqNum(1),
            ack: SeqNum(10_000),
            rx_avail: 16_384,
            remote_win: u16::MAX,
            ..Default::default()
        };
        let mut last_ack = ps.ack;
        let mut budget = ps.rx_avail;
        for (off, len) in segs {
            let sum = RxSummary {
                seq: SeqNum(10_000u32.wrapping_add(off)),
                ack: SeqNum(1),
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: u16::MAX,
                payload_len: len,
                ..Default::default()
            };
            let out = proto::rx_segment(&mut ps, &sum);
            // monotone rcv_nxt
            prop_assert!(ps.ack.after_eq(last_ack));
            prop_assert!(out.delivered == ps.ack - last_ack);
            last_ack = ps.ack;
            // rx_avail accounting: shrinks exactly by delivered bytes
            prop_assert!(out.delivered <= budget);
            budget -= out.delivered;
            prop_assert_eq!(ps.rx_avail, budget);
            // OOO interval is strictly ahead of rcv_nxt
            if ps.ooo_len > 0 {
                prop_assert!(ps.ooo_start.after(ps.ack));
                prop_assert!((ps.ooo_start + ps.ooo_len) - ps.ack <= budget);
            }
        }
    }

    /// TX then cumulative-ACK sequences keep sender invariants:
    /// tx_sent == seq - snd_una, buffers never double-free.
    #[test]
    fn tx_ack_invariants(ops in proptest::collection::vec(any::<bool>(), 1..80)) {
        let mut ps = ProtoState {
            seq: SeqNum(5_000),
            ack: SeqNum(1),
            rx_avail: 4096,
            remote_win: 20_000,
            tx_avail: 100_000,
            ..Default::default()
        };
        let mut freed_total: u64 = 0;
        let mut sent_total: u64 = 0;
        for do_send in ops {
            if do_send {
                if let Some(seg) = proto::tx_next(&mut ps, 1448) {
                    sent_total += seg.len as u64;
                }
            } else if ps.tx_sent > 0 {
                // peer cumulatively acks half of what is in flight
                let ackno = SeqNum(ps.snd_una().0.wrapping_add((ps.tx_sent / 2).max(1)));
                let sum = RxSummary {
                    seq: ps.ack,
                    ack: ackno,
                    flags: TcpFlags::ACK,
                    window: 20_000,
                    payload_len: 0,
                    ..Default::default()
                };
                let out = proto::rx_segment(&mut ps, &sum);
                freed_total += out.acked_bytes as u64;
            }
            prop_assert_eq!(ps.seq - ps.snd_una(), ps.tx_sent);
            prop_assert!(ps.tx_sent <= 20_000, "never exceeds the peer window");
            prop_assert!(freed_total <= sent_total);
        }
    }

    /// The Carousel never duplicates a connection trigger beyond its
    /// sendable bytes, and fairness holds for equal backlogs.
    #[test]
    fn carousel_conservation(n_conns in 1usize..40, backlog in 1u32..20_000) {
        let mut c = Carousel::with_defaults();
        for conn in 0..n_conns as u32 {
            c.register(conn);
            c.update_sendable(conn, backlog, Time::ZERO);
        }
        let mut per = vec![0u64; n_conns];
        let mut now = Time::ZERO;
        for _ in 0..(n_conns * 32) {
            if let Some(t) = c.next_trigger(now, 1448) {
                per[t.conn as usize] += t.bytes_est as u64;
            }
            now = now + Duration::from_us(1);
        }
        for (conn, &bytes) in per.iter().enumerate() {
            prop_assert!(bytes <= backlog as u64, "conn {conn} over-triggered");
        }
        // everything drained exactly
        prop_assert!(per.iter().all(|&b| b == backlog as u64));
    }

    /// Histogram quantiles stay within the configured relative error.
    #[test]
    fn histogram_quantile_error(values in proptest::collection::vec(1u64..1_000_000, 10..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.25, 0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64).floor() as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(rel < 0.05, "q={q} exact={exact} approx={approx}");
        }
    }
}
