//! Property-based tests on the core data structures and protocol
//! invariants.
//!
//! The container has no third-party crates, so instead of `proptest` we
//! drive each property from the simulator's own deterministic xoshiro
//! generator: every case is reproducible from the iteration index, and a
//! failure message names the seed that produced it.

use flextoe_core::proto::{self, RxSummary};
use flextoe_core::reorder::Reorder;
use flextoe_core::sched::Carousel;
use flextoe_core::ProtoState;
use flextoe_sim::{Duration, Histogram, Rng, Time};
use flextoe_wire::{
    checksum, ethertype, insert_vlan, strip_vlan, Ecn, FrameMeta, Ip4, MacAddr, SegmentSpec,
    SegmentView, SeqNum, TcpFlags, TcpOptions,
};

const CASES: u64 = 200;

/// Run `f` once per case with an independently seeded generator.
fn for_cases(name: &str, f: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::new(0xF1E2_0000 ^ case);
        // A panic inside f already aborts the test; print the seed first
        // so the failing case can be replayed in isolation.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = result {
            panic!("property {name} failed at case {case}: {e:?}");
        }
    }
}

/// Whatever order items enter the reorderer, they exit in order.
#[test]
fn reorder_releases_in_order() {
    for_cases("reorder_releases_in_order", |rng| {
        let mut order: Vec<u64> = (0..64).collect();
        rng.shuffle(&mut order);
        let mut r = Reorder::new();
        let mut out = Vec::new();
        for seq in order {
            out.extend(r.push(seq, seq));
        }
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
    });
}

/// Random skip/push interleavings never deliver out of order or twice.
#[test]
fn reorder_with_random_skips() {
    for_cases("reorder_with_random_skips", |rng| {
        let n_skips = rng.below(40);
        let skips: std::collections::BTreeSet<u64> = (0..n_skips).map(|_| rng.below(100)).collect();
        let mut r = Reorder::new();
        let mut released = Vec::new();
        // push items high-to-low so everything buffers, skipping `skips`
        for seq in (0..100u64).rev() {
            if skips.contains(&seq) {
                released.extend(r.skip(seq));
            } else {
                released.extend(r.push(seq, seq));
            }
        }
        let expect: Vec<u64> = (0..100u64).filter(|s| !skips.contains(s)).collect();
        assert_eq!(released, expect);
    });
}

/// TCP segments survive emit -> parse for arbitrary field values.
#[test]
fn segment_roundtrip() {
    for_cases("segment_roundtrip", |rng| {
        let seq = rng.next_u32();
        let ack = rng.next_u32();
        let window = rng.next_u32() as u16;
        let sport = rng.range(1, u16::MAX as u64 - 1) as u16;
        let dport = rng.range(1, u16::MAX as u64 - 1) as u16;
        let payload: Vec<u8> = (0..rng.below(256)).map(|_| rng.next_u32() as u8).collect();
        let (tsval, tsecr) = (rng.next_u32(), rng.next_u32());
        let spec = SegmentSpec {
            src_port: sport,
            dst_port: dport,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window,
            options: TcpOptions {
                timestamp: Some((tsval, tsecr)),
                ..Default::default()
            },
            payload_len: payload.len(),
            ..Default::default()
        };
        let frame = spec.emit(&payload);
        let v = SegmentView::parse(&frame, true).unwrap();
        assert_eq!(v.seq, SeqNum(seq));
        assert_eq!(v.ack, SeqNum(ack));
        assert_eq!(v.window, window);
        assert_eq!(v.payload(&frame), &payload[..]);
        assert_eq!((v.tsval, v.tsecr), (tsval, tsecr));
    });
}

/// Parse-once metadata is a cache of a parse, never an independent
/// source of truth: whatever a spec emits, the metadata computed from
/// the spec equals a fresh reparse of the bytes — through VLAN
/// tagging/stripping, after checksum corruption (metadata describes
/// routing fields, which a payload flip doesn't change), and `None`
/// exactly when the frame is not parseable IPv4.
#[test]
fn frame_meta_always_equals_fresh_reparse() {
    for_cases("frame_meta_always_equals_fresh_reparse", |rng| {
        let spec = SegmentSpec {
            src_mac: MacAddr::local(rng.range(1, 200) as u8),
            dst_mac: MacAddr::local(rng.range(1, 200) as u8),
            src_ip: Ip4::host(rng.range(1, 250) as u8),
            dst_ip: Ip4::host(rng.range(1, 250) as u8),
            src_port: rng.range(1, u16::MAX as u64 - 1) as u16,
            dst_port: rng.range(1, u16::MAX as u64 - 1) as u16,
            seq: SeqNum(rng.next_u32()),
            ack: SeqNum(rng.next_u32()),
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: rng.next_u32() as u16,
            ecn: match rng.below(4) {
                0 => Ecn::NotEct,
                1 => Ecn::Ect0,
                2 => Ecn::Ect1,
                _ => Ecn::Ce,
            },
            options: TcpOptions {
                timestamp: Some((rng.next_u32(), rng.next_u32())),
                ..Default::default()
            },
            payload_len: rng.below(512) as usize,
        };
        let mut frame = spec.emit_with(|b| b.fill(0x5a));

        // spec-computed metadata == reparse of the emitted bytes
        let meta = spec.meta();
        assert_eq!(FrameMeta::parse(&frame), Some(meta));

        // VLAN insertion shifts the IP header; a reparse must follow it
        insert_vlan(&mut frame, rng.range(1, 4094) as u16);
        let tagged = FrameMeta::parse(&frame).expect("vlan frame parses");
        assert_eq!(
            FrameMeta {
                ip_off: meta.ip_off + 4,
                ethertype: meta.ethertype,
                ..meta
            },
            tagged
        );

        // …and stripping restores the original metadata exactly
        strip_vlan(&mut frame).expect("tag present");
        assert_eq!(FrameMeta::parse(&frame), Some(meta));

        // corrupting the TCP checksum bytes doesn't change any routing
        // field, so the metadata of the corrupted frame still matches a
        // reparse (the *data path* rejects it via checksum verification —
        // which is why links drop the carried tag on corruption)
        let ck_off = 14 + 20 + 16;
        frame[ck_off] ^= 0xff;
        assert_eq!(FrameMeta::parse(&frame), Some(meta));
        frame[ck_off] ^= 0xff;

        // non-IP (ARP) and truncated frames carry no metadata
        frame[12..14].copy_from_slice(&ethertype::ARP.to_be_bytes());
        assert_eq!(FrameMeta::parse(&frame), None);
        frame[12..14].copy_from_slice(&ethertype::IPV4.to_be_bytes());
        assert_eq!(FrameMeta::parse(&frame[..rng.below(14) as usize]), None);

        // mangling the IP version makes the frame unparseable -> None
        frame[14] = 0x65;
        assert_eq!(FrameMeta::parse(&frame), None);
    });
}

/// Single-bit corruption anywhere in a frame is always detected by
/// the IP or TCP checksum.
#[test]
fn checksums_catch_single_bit_flips() {
    for_cases("checksums_catch_single_bit_flips", |rng| {
        let payload: Vec<u8> = (0..rng.range(1, 63))
            .map(|_| rng.next_u32() as u8)
            .collect();
        let spec = SegmentSpec {
            src_port: 1000,
            dst_port: 2000,
            flags: TcpFlags::ACK,
            payload_len: payload.len(),
            ..Default::default()
        };
        let mut frame = spec.emit(&payload);
        // flip one bit outside the Ethernet header (not checksummed)
        let idx = 14 + rng.below(frame.len() as u64 - 14) as usize;
        let bit = rng.below(8) as u8;
        frame[idx] ^= 1 << bit;
        assert!(SegmentView::parse(&frame, true).is_err());
    });
}

/// Incremental checksum update equals full recomputation.
#[test]
fn incremental_checksum_equivalence() {
    for_cases("incremental_checksum_equivalence", |rng| {
        let mut data: Vec<u8> = (0..rng.range(20, 63))
            .map(|_| rng.next_u32() as u8)
            .collect();
        if data.len() % 2 == 1 {
            data.pop();
        }
        let new_val = rng.next_u32() as u16;
        let pos = rng.below(data.len() as u64 / 2 - 1) as usize * 2;
        let ck = checksum::checksum(&data);
        let old = u16::from_be_bytes([data[pos], data[pos + 1]]);
        data[pos..pos + 2].copy_from_slice(&new_val.to_be_bytes());
        assert_eq!(
            checksum::checksum(&data),
            checksum::update16(ck, old, new_val)
        );
    });
}

/// Receiving arbitrary in-window segment sequences never corrupts the
/// protocol invariants: rcv_nxt only advances, rx_avail never
/// underflows, the OOO interval stays ahead of rcv_nxt.
#[test]
fn rx_state_invariants() {
    for_cases("rx_state_invariants", |rng| {
        let n_segs = rng.range(1, 59);
        let mut ps = ProtoState {
            seq: SeqNum(1),
            ack: SeqNum(10_000),
            rx_avail: 16_384,
            remote_win: u16::MAX,
            ..Default::default()
        };
        let mut last_ack = ps.ack;
        let mut budget = ps.rx_avail;
        for _ in 0..n_segs {
            let off = rng.below(20_000) as u32;
            let len = rng.range(1, 1999) as u32;
            let sum = RxSummary {
                seq: SeqNum(10_000u32.wrapping_add(off)),
                ack: SeqNum(1),
                flags: TcpFlags::ACK | TcpFlags::PSH,
                window: u16::MAX,
                payload_len: len,
                ..Default::default()
            };
            let out = proto::rx_segment(&mut ps, &sum);
            // monotone rcv_nxt
            assert!(ps.ack.after_eq(last_ack));
            assert!(out.delivered == ps.ack - last_ack);
            last_ack = ps.ack;
            // rx_avail accounting: shrinks exactly by delivered bytes
            assert!(out.delivered <= budget);
            budget -= out.delivered;
            assert_eq!(ps.rx_avail, budget);
            // OOO interval is strictly ahead of rcv_nxt
            if ps.ooo_len > 0 {
                assert!(ps.ooo_start.after(ps.ack));
                assert!((ps.ooo_start + ps.ooo_len) - ps.ack <= budget);
            }
        }
    });
}

/// TX then cumulative-ACK sequences keep sender invariants:
/// tx_sent == seq - snd_una, buffers never double-free.
#[test]
fn tx_ack_invariants() {
    for_cases("tx_ack_invariants", |rng| {
        let n_ops = rng.range(1, 79);
        let mut ps = ProtoState {
            seq: SeqNum(5_000),
            ack: SeqNum(1),
            rx_avail: 4096,
            remote_win: 20_000,
            tx_avail: 100_000,
            ..Default::default()
        };
        let mut freed_total: u64 = 0;
        let mut sent_total: u64 = 0;
        for _ in 0..n_ops {
            if rng.chance(0.5) {
                if let Some(seg) = proto::tx_next(&mut ps, 1448) {
                    sent_total += seg.len as u64;
                }
            } else if ps.tx_sent > 0 {
                // peer cumulatively acks half of what is in flight
                let ackno = SeqNum(ps.snd_una().0.wrapping_add((ps.tx_sent / 2).max(1)));
                let sum = RxSummary {
                    seq: ps.ack,
                    ack: ackno,
                    flags: TcpFlags::ACK,
                    window: 20_000,
                    payload_len: 0,
                    ..Default::default()
                };
                let out = proto::rx_segment(&mut ps, &sum);
                freed_total += out.acked_bytes as u64;
            }
            assert_eq!(ps.seq - ps.snd_una(), ps.tx_sent);
            assert!(ps.tx_sent <= 20_000, "never exceeds the peer window");
            assert!(freed_total <= sent_total);
        }
    });
}

/// The Carousel never duplicates a connection trigger beyond its
/// sendable bytes, and fairness holds for equal backlogs.
#[test]
fn carousel_conservation() {
    for_cases("carousel_conservation", |rng| {
        let n_conns = rng.range(1, 39) as usize;
        let backlog = rng.range(1, 19_999) as u32;
        let mut c = Carousel::with_defaults();
        for conn in 0..n_conns as u32 {
            c.register(conn);
            c.update_sendable(conn, backlog, Time::ZERO);
        }
        let mut per = vec![0u64; n_conns];
        let mut now = Time::ZERO;
        for _ in 0..(n_conns * 32) {
            if let Some(t) = c.next_trigger(now, 1448) {
                per[t.conn as usize] += t.bytes_est as u64;
            }
            now += Duration::from_us(1);
        }
        for (conn, &bytes) in per.iter().enumerate() {
            assert!(bytes <= backlog as u64, "conn {conn} over-triggered");
        }
        // everything drained exactly
        assert!(per.iter().all(|&b| b == backlog as u64));
    });
}

/// Histogram quantiles stay within the configured relative error.
#[test]
fn histogram_quantile_error() {
    for_cases("histogram_quantile_error", |rng| {
        let n = rng.range(10, 499) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.range(1, 999_999)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.25, 0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64).floor() as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q} exact={exact} approx={approx}");
        }
    });
}
