//! Scheduler equivalence: the bucketed event wheel must deliver *exactly*
//! the order the `BinaryHeap` reference scheduler delivers — timestamp
//! order, ties broken by enqueue order, byte-identical results from the
//! same seed — plus pool-hygiene checks on the zero-allocation fast path.

use std::cell::RefCell;
use std::rc::Rc;

use flextoe_apps::{
    ClientConfig, FlexToeStack, LoadMode, RpcClientApp, RpcServerApp, ServerConfig,
};
use flextoe_integration::{default_setup, Host};
use flextoe_sim::{Ctx, Duration, Msg, Node, NodeId, QueueKind, Sim, Tick, Time};

type Client = RpcClientApp<FlexToeStack>;
type Server = RpcServerApp<FlexToeStack>;

// ---- property: random workloads deliver identically ----------------------

type Log = Rc<RefCell<Vec<(u64, usize, u64)>>>;

/// A node that logs every delivery and schedules a random number of
/// follow-ups at random distances (zero-delay, in-bucket, in-window and
/// far-overflow), drawing randomness from the engine's deterministic RNG.
struct Hopper {
    peers: Vec<NodeId>,
    log: Log,
    budget: Rc<RefCell<u32>>,
}

impl Node for Hopper {
    fn on_msg(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        let Msg::Token(v) = msg else {
            panic!("hopper: unexpected {}", msg.variant_name())
        };
        self.log
            .borrow_mut()
            .push((ctx.now().ps(), ctx.self_id(), v));
        let mut budget = self.budget.borrow_mut();
        if *budget == 0 {
            return;
        }
        let n = ctx.rng.below(3);
        for _ in 0..n {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            let d = match ctx.rng.below(5) {
                0 => Duration::ZERO,
                1 => Duration::from_ps(ctx.rng.below(4_096)),
                2 => Duration::from_ns(ctx.rng.below(1_000)),
                3 => Duration::from_us(ctx.rng.below(60)),
                _ => Duration::from_ms(1 + ctx.rng.below(5)),
            };
            let to = *ctx.rng.pick(&self.peers);
            let val = ctx.rng.next_u64();
            ctx.send(to, d, val);
        }
    }
}

fn random_workload(seed: u64, kind: QueueKind) -> (Vec<(u64, usize, u64)>, u64, u64) {
    random_workload_cfg(seed, kind, true)
}

fn random_workload_cfg(
    seed: u64,
    kind: QueueKind,
    burst: bool,
) -> (Vec<(u64, usize, u64)>, u64, u64) {
    let mut sim = Sim::with_queue(seed, kind);
    sim.set_burst(burst);
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let budget = Rc::new(RefCell::new(20_000u32));
    let ids: Vec<NodeId> = (0..8).map(|_| sim.reserve_node()).collect();
    for &id in &ids {
        sim.fill_node(
            id,
            Hopper {
                peers: ids.clone(),
                log: log.clone(),
                budget: budget.clone(),
            },
        );
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.schedule(Time::from_ns(i as u64), id, i as u64);
    }
    sim.run();
    let events = sim.events_processed();
    let end = sim.now().ps();
    let entries = log.borrow().clone();
    (entries, events, end)
}

/// The wheel delivers byte-identically to the heap reference: same
/// delivery log (time, node, payload), same event count, same end time.
#[test]
fn wheel_matches_heap_on_random_workloads() {
    for seed in [1u64, 7, 42, 0xDEAD, 991] {
        let wheel = random_workload(seed, QueueKind::Wheel);
        let heap = random_workload(seed, QueueKind::Heap);
        assert_eq!(wheel.1, heap.1, "event counts diverged for seed {seed}");
        assert_eq!(wheel.2, heap.2, "end times diverged for seed {seed}");
        assert_eq!(wheel.0, heap.0, "delivery order diverged for seed {seed}");
    }
}

/// Property: the burst engine (wheel + same-slot direct drain + per-node
/// delivery coalescing) delivers byte-identically to the strict reference
/// (`BinaryHeap` scheduler, per-event delivery) on random node graphs
/// whose handlers mix zero-delay, same-slot (sub-bucket), in-window and
/// far-future (overflow) sends — same delivery log, same
/// `events_processed`, same end time.
#[test]
fn burst_engine_matches_strict_reference_on_random_dags() {
    for seed in [2u64, 11, 77, 4242, 0xBEEF] {
        let burst = random_workload_cfg(seed, QueueKind::Wheel, true);
        let reference = random_workload_cfg(seed, QueueKind::Heap, false);
        assert_eq!(
            burst.1, reference.1,
            "events_processed diverged for seed {seed}"
        );
        assert_eq!(burst.2, reference.2, "end times diverged for seed {seed}");
        assert_eq!(
            burst.0, reference.0,
            "delivery order diverged for seed {seed}"
        );
        // and coalescing itself must be transparent on the same scheduler
        let noburst = random_workload_cfg(seed, QueueKind::Wheel, false);
        assert_eq!(burst, noburst, "bursting changed a wheel run, seed {seed}");
    }
}

/// Determinism: the same seed gives the same run, twice, on the wheel.
#[test]
fn wheel_is_deterministic_across_runs() {
    let a = random_workload(123, QueueKind::Wheel);
    let b = random_workload(123, QueueKind::Wheel);
    assert_eq!(a, b);
    let c = random_workload(124, QueueKind::Wheel);
    assert_ne!(a.0, c.0);
}

// ---- property: the full data-path is scheduler-independent ---------------

fn echo_fingerprint(kind: QueueKind) -> (u64, u64, u64, u64, u64, u64, usize, usize) {
    echo_fingerprint_cfg(kind, true)
}

fn echo_fingerprint_cfg(
    kind: QueueKind,
    burst: bool,
) -> (u64, u64, u64, u64, u64, u64, usize, usize) {
    let mut sim = Sim::with_queue(7, kind);
    sim.set_burst(burst);
    let (a, b) = default_setup(&mut sim);
    let server = sim.add_node(Server::new(
        ServerConfig {
            msg_size: 64,
            resp_size: 64,
            ..Default::default()
        },
        stack_init(&b, 1),
    ));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: b.ip,
            n_conns: 4,
            msg_size: 64,
            resp_size: 64,
            mode: LoadMode::Closed { pipeline: 2 },
            stop_after: Some(500),
            ..Default::default()
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(Time::from_ms(500));

    let c = sim.node_ref::<Client>(client);
    let s = sim.node_ref::<Server>(server);
    let fp = (
        sim.events_processed(),
        c.measured,
        c.latency.median(),
        c.latency.quantile(0.99),
        s.requests,
        sim.now().ps(),
        a.nic.work_pool.borrow().in_use(),
        b.nic.work_pool.borrow().in_use(),
    );
    assert_eq!(c.connected, 4);
    assert_eq!(c.measured, 500);
    fp
}

fn stack_init(host: &Host, ctx_id: u16) -> flextoe_apps::StackInit<FlexToeStack> {
    let nic = host.nic.handle();
    let ctrl = host.ctrl;
    Box::new(move |ctx, app| FlexToeStack::new(ctx, ctx_id, nic, ctrl, app))
}

/// A complete two-host echo run (handshake, pipeline, DMA, context
/// queues, RPC latency measurement) produces identical statistics on both
/// schedulers.
#[test]
fn full_pipeline_identical_on_both_schedulers() {
    let wheel = echo_fingerprint(QueueKind::Wheel);
    let heap = echo_fingerprint(QueueKind::Heap);
    assert_eq!(wheel, heap, "wheel and heap runs diverged");
}

/// The full data-path — including every node that overrides `on_batch`
/// (stages, links, MACs, host stacks) — is identical between the default
/// burst engine and the strict per-event reference.
#[test]
fn full_pipeline_identical_burst_vs_reference() {
    let burst = echo_fingerprint_cfg(QueueKind::Wheel, true);
    let reference = echo_fingerprint_cfg(QueueKind::Heap, false);
    assert_eq!(burst, reference, "burst engine diverged from reference");
}

// ---- pool hygiene --------------------------------------------------------

/// After a quiescent run, every pipeline work item was returned to the
/// pool (no leaks, no stuck slots) and the packet-buffer pool was
/// actually recycling buffers on the data path.
#[test]
fn pools_balance_after_end_to_end_run() {
    let mut sim = Sim::new(7);
    let (a, b) = default_setup(&mut sim);
    let server = sim.add_node(Server::new(
        ServerConfig {
            msg_size: 512,
            resp_size: 512,
            ..Default::default()
        },
        stack_init(&b, 1),
    ));
    let client = sim.add_node(Client::new(
        ClientConfig {
            server_ip: b.ip,
            n_conns: 2,
            msg_size: 512,
            resp_size: 512,
            mode: LoadMode::Closed { pipeline: 2 },
            stop_after: Some(300),
            ..Default::default()
        },
        stack_init(&a, 1),
    ));
    sim.schedule(Time::ZERO, server, Tick);
    sim.schedule(Time::from_us(20), client, Tick);
    sim.run_until(Time::from_ms(500));
    assert_eq!(sim.node_ref::<Client>(client).measured, 300);
    // the client halts the sim the instant it finishes measuring, which
    // strands whatever was in flight at that instant — clear the halt and
    // let the pipeline quiesce before auditing the pools
    sim.clear_halt();
    sim.run_until(Time::from_ms(501));

    for (name, host) in [("client", &a), ("server", &b)] {
        let pool = host.nic.work_pool.borrow();
        assert_eq!(
            pool.in_use(),
            0,
            "{name} NIC leaked {} work slots (allocated {}, released {}): {:?}",
            pool.in_use(),
            pool.allocated,
            pool.released,
            pool.live_slots()
        );
        assert!(pool.allocated > 0, "{name} pipeline processed work");
        assert_eq!(pool.allocated, pool.released);
        assert!(
            pool.high_water < 4096,
            "{name} high water {} suspiciously large",
            pool.high_water
        );

        let seg = host.nic.seg_pool.borrow();
        assert!(
            seg.reuse_ratio() > 0.5,
            "{name} seg pool barely recycling: ratio {:.2} (takes {}, fresh {})",
            seg.reuse_ratio(),
            seg.takes,
            seg.fresh_allocs
        );
    }
}
