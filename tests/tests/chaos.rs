//! The chaos plane end to end: hard link/switch failures and explicit
//! healing, ECMP failover around dead ports, RTO give-up → session abort
//! → reconnection after heal, corrupted-frame exactly-once accounting,
//! deterministic same-timestamp fault ordering, and the conservation
//! invariant + byte-identity contract of the `faults` chaos sweep.

use flextoe_apps::{CloseAll, FramedServerConfig, SessionConfig};
use flextoe_bench::faults::{
    buf_balance, faults_json, run_faults_jobs, run_faults_one, FaultsPlan,
};
use flextoe_netsim::{Faults, Link, Switch};
use flextoe_sim::{Duration, NodeId, Sim, Time};
use flextoe_topo::{
    build_fabric, BuiltFabric, DynFramedServer, DynSessionClient, Fabric, FaultEvent, FaultTarget,
    LinkScope, Role, Scenario, Stack,
};

/// A 4-leaf/2-spine fabric where every even host runs reconnecting
/// sessions toward the server on the next leaf — the same traffic
/// pattern as the `faults` sweep, with the chaos-grade RTO tuning
/// (shrunk floor + give-up budget so a blackholed flow aborts in ~3 ms).
/// `req_size` sets the stall surface: multi-segment requests keep the
/// client mid-transfer (unACKed data) most of the cycle, so a cut path
/// reliably trips the *client-side* RTO give-up, not just the server's.
fn session_fabric(seed: u64, req_size: u32, schedule: Vec<FaultEvent>) -> Scenario {
    let fabric = Fabric::LeafSpine {
        leaves: 4,
        spines: 2,
        hosts_per_leaf: 2,
    };
    let mut sc = Scenario::idle(seed, fabric, Stack::FlexToe);
    sc.opts.min_rto = Duration::from_us(200);
    sc.opts.syn_retry = Duration::from_us(400);
    sc.opts.rto_give_up = Some(3);
    for i in 0..sc.hosts.len() {
        sc.hosts[i].role = if i % 2 == 0 {
            let leaf = i / 2;
            Role::Session {
                cfg: SessionConfig {
                    n_sessions: 4,
                    req_size,
                    resp_size: 512,
                    think: Duration::from_us(20),
                    backoff_base: Duration::from_us(200),
                    backoff_cap: Duration::from_ms(2),
                    warmup: Time::from_us(500),
                    ..Default::default()
                },
                target: ((leaf + 1) % 4) * 2 + 1,
            }
        } else {
            Role::FramedServer(FramedServerConfig::default())
        };
    }
    sc.fault_schedule = schedule;
    sc
}

fn session_nodes(fab: &BuiltFabric) -> Vec<NodeId> {
    fab.hosts.iter().filter_map(|h| h.session()).collect()
}

fn total_completed(sim: &Sim, sessions: &[NodeId]) -> u64 {
    sessions
        .iter()
        .map(|&n| sim.node_ref::<DynSessionClient>(n).completed)
        .sum()
}

/// A hard fabric-link failure fails over via ECMP at the leaf (the dead
/// uplink port is excluded and the pick re-finalized). Flows whose
/// *spine-side* hash lands on the severed spine→leaf direction blackhole
/// there until the heal — a short outage, so retransmission rides it out
/// without any session aborting, and traffic keeps completing.
#[test]
fn fabric_link_down_fails_over_without_aborts() {
    let link = FaultTarget::FabricLink { index: 0 };
    let sc = session_fabric(
        7,
        128,
        vec![
            FaultEvent::down(Time::from_ms(1), link),
            FaultEvent::up(Time::from_ms(2), link),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(1));
    let before = total_completed(&sim, &session_nodes(&fab));
    sim.run_until(Time::from_ms(4));

    let rerouted: u64 = fab
        .switches
        .iter()
        .map(|&s| sim.node_ref::<Switch>(s).rerouted)
        .sum();
    assert!(rerouted > 0, "ECMP must re-finalize around the dead port");
    for &n in &session_nodes(&fab) {
        let c = sim.node_ref::<DynSessionClient>(n);
        assert_eq!(c.aborted_conns, 0, "failover must not abort sessions");
    }
    let after = total_completed(&sim, &session_nodes(&fab));
    assert!(after > before + 100, "traffic flowed through the outage");
}

/// Killing a whole spine drops its in-flight frames (counted at the dead
/// switch) while the surviving spine carries every flow; the heal
/// restores both paths and nobody aborted.
#[test]
fn spine_kill_fails_over_and_heals() {
    let spine0 = FaultTarget::Switch { index: 4 };
    let sc = session_fabric(
        13,
        128,
        vec![
            FaultEvent::down(Time::from_ms(1), spine0),
            FaultEvent::up(Time::from_ms(2), spine0),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(4));

    let rerouted: u64 = fab
        .switches
        .iter()
        .map(|&s| sim.node_ref::<Switch>(s).rerouted)
        .sum();
    assert!(rerouted > 0, "leaf uplink picks moved to the live spine");
    for &n in &session_nodes(&fab) {
        let c = sim.node_ref::<DynSessionClient>(n);
        assert_eq!(c.aborted_conns, 0);
        assert!(c.completed > 0);
    }
    // after the heal the killed spine routes again
    let spine0_routed = sim.node_ref::<Switch>(fab.switches[4]).routed;
    assert!(spine0_routed > 0, "healed spine rejoined the ECMP spread");
}

/// A blackholed flow gives up: with the server's edge link hard-down and
/// never healed, the client's RTO manager exhausts its give-up budget
/// mid-request, the control plane aborts the connection, and the session
/// client observes the typed abort, writes off in-flight requests, and
/// its reconnects fail cleanly (SYN retries give up → `connect_failures`)
/// instead of hanging. 8 KiB requests keep the client mid-transfer so
/// the cut reliably lands on unACKed client data.
#[test]
fn blackholed_flow_gives_up_and_aborts_to_the_app() {
    // host 0 (leaf 0) targets host 3 (leaf 1): kill host 3's edge link
    let sc = session_fabric(
        19,
        8192,
        vec![FaultEvent::down(
            Time::from_ms(1),
            FaultTarget::EdgeLink { host: 3 },
        )],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(16));

    assert!(sim.stats.get_named("ctrl.rto_fired") > 0);
    assert!(sim.stats.get_named("ctrl.abort") > 0, "give-up must abort");
    let victim = fab.hosts[0].session().unwrap();
    let c = sim.node_ref::<DynSessionClient>(victim);
    assert!(c.aborted_conns > 0, "client saw the typed abort");
    assert!(c.dead_requests > 0, "in-flight requests were written off");
    assert!(
        c.connect_failures > 0,
        "reconnects into the blackhole must fail cleanly, not hang"
    );
    // the other clients' paths never crossed the dead edge link
    for (i, h) in fab.hosts.iter().enumerate() {
        if i != 0 {
            if let Some(n) = h.session() {
                assert_eq!(sim.node_ref::<DynSessionClient>(n).aborted_conns, 0);
            }
        }
    }
}

/// The full leaf-kill arc through the bench driver: sessions into the
/// dead leaf abort inside the fault window, reconnect after the heal
/// (the reconnection storm), goodput recovers to ≥95% of baseline, and
/// the conservation audit holds.
#[test]
fn leaf_kill_aborts_then_reconnects_and_conserves() {
    let plan = FaultsPlan::full();
    let row = plan
        .rows
        .iter()
        .find(|r| r.name == "leaf-kill")
        .expect("full plan has a leaf-kill row");
    let r = run_faults_one(23, row, &plan);
    assert!(r.blackholed > 0, "leaf death blackholes its hosts");
    assert!(r.ctrl_aborts > 0, "RTO give-up fired during the outage");
    assert!(r.aborted_conns > 0, "sessions saw the abort");
    assert!(r.reconnects > 0, "sessions reconnected after the heal");
    assert!(
        r.recovered,
        "goodput back to ≥95% of baseline: {:?}",
        r.timeline
    );
    assert!(r.recover_us >= 0);
    assert!(
        r.conserved,
        "issued={} completed={} dead={} in_flight={} work={} buf_delta={}",
        r.issued, r.completed, r.dead_requests, r.in_flight_end, r.gauges.work_in_use, r.buf_delta
    );
}

/// Corrupted frames are dropped exactly once: the link strips the
/// parse-once tag, the receiver's Val step re-verifies checksums on the
/// slow path, the frame dies there (counted in `pre.malformed`) and its
/// buffer is recycled — never delivered, never double-freed. Corruption
/// cannot leak into the byte streams, and the global buffer balance
/// still drains to zero.
#[test]
fn corrupted_frames_drop_exactly_once_and_conserve() {
    let sc = session_fabric(
        29,
        128,
        vec![
            FaultEvent::degrade(
                Time::from_ms(1),
                LinkScope::Fabric,
                Faults {
                    corrupt_chance: 0.02,
                    ..Default::default()
                },
            ),
            FaultEvent::degrade(Time::from_us(2500), LinkScope::Fabric, Faults::default()),
        ],
    );
    let mut sim = Sim::new(sc.seed);
    let fab = build_fabric(&mut sim, &sc);
    sim.run_until(Time::from_ms(4));
    let sessions = session_nodes(&fab);
    for &n in &sessions {
        sim.schedule(sim.now(), n, CloseAll);
    }
    sim.run_until(Time::from_ms(6));

    let corrupted: u64 = fab
        .fabric_links
        .iter()
        .map(|&l| sim.node_ref::<Link>(l).corrupted)
        .sum();
    let malformed = sim.stats.get_named("pre.malformed");
    assert!(corrupted > 0, "the window corrupted frames");
    assert!(malformed > 0, "checksum re-verification caught them");
    // ≤: a flip can land in the (unchecksummed) Ethernet MAC bytes and
    // survive; every checksummed flip dies exactly once at Val
    assert!(
        malformed <= corrupted,
        "a frame must not be counted malformed twice ({malformed} > {corrupted})"
    );
    for h in &fab.hosts {
        if let Some(app) = h.app {
            if h.role == flextoe_topo::BuiltRole::Server {
                let s = sim.node_ref::<DynFramedServer>(app);
                assert_eq!(s.bad_frames, 0, "corruption leaked into a stream");
            }
        }
    }
    // exactly-once in buffer terms: dropped corrupt frames were recycled,
    // not leaked or double-freed
    assert_eq!(buf_balance(&sim, &fab), 0);
    let (mut issued, mut completed, mut dead) = (0u64, 0u64, 0u64);
    for &n in &sessions {
        let c = sim.node_ref::<DynSessionClient>(n);
        issued += c.issued;
        completed += c.completed;
        dead += c.dead_requests;
    }
    assert_eq!(issued, completed + dead, "every request accounted once");
}

/// Same-timestamp fault events apply in schedule order (the builder
/// sorts by `(at, index)`): `down` then `up` at one instant leaves the
/// link healthy, the reverse leaves it dead — deterministically.
#[test]
fn same_timestamp_fault_events_apply_in_schedule_order() {
    let link = FaultTarget::FabricLink { index: 0 };
    let t = Time::from_ms(1);
    let run = |schedule: Vec<FaultEvent>| -> (u64, u64) {
        let sc = session_fabric(11, 128, schedule);
        let mut sim = Sim::new(sc.seed);
        let fab = build_fabric(&mut sim, &sc);
        sim.run_until(Time::from_ms(3));
        let rerouted = fab
            .switches
            .iter()
            .map(|&s| sim.node_ref::<Switch>(s).rerouted)
            .sum();
        let down_drops = fab
            .fabric_links
            .iter()
            .map(|&l| sim.node_ref::<Link>(l).down_drops)
            .sum();
        (rerouted, down_drops)
    };
    let (rr_up, dd_up) = run(vec![FaultEvent::down(t, link), FaultEvent::up(t, link)]);
    assert_eq!((rr_up, dd_up), (0, 0), "down;up at one instant = healthy");
    let (rr_down, _) = run(vec![FaultEvent::up(t, link), FaultEvent::down(t, link)]);
    assert!(rr_down > 0, "up;down at one instant = dead, ECMP rerouted");
}

/// The chaos sweep's acceptance contract: every smoke row passes the
/// conservation audit, and `BENCH_faults.json` is byte-identical across
/// runs and `--jobs` values for one seed.
#[test]
fn faults_sweep_conserves_and_is_byte_identical() {
    let plan = FaultsPlan::smoke();
    let a = run_faults_jobs(23, &plan, 1);
    for r in &a {
        assert!(
            r.conserved,
            "{}: issued={} completed={} dead={} in_flight={} work={} buf_delta={}",
            r.name,
            r.issued,
            r.completed,
            r.dead_requests,
            r.in_flight_end,
            r.gauges.work_in_use,
            r.buf_delta
        );
        assert!(r.recovered, "{}: {:?}", r.name, r.timeline);
    }
    let ja = faults_json(23, &plan, &a);
    let jb = faults_json(23, &plan, &run_faults_jobs(23, &plan, 2));
    assert_eq!(ja, jb, "jobs=2 diverged from the serial run");
    assert!(ja.contains("\"benchmark\": \"faults\""));
    assert!(ja.contains("\"conserved\": true"));
    assert!(!ja.contains("\"conserved\": false"));
}
